"""Deterministic discrete-event engine for SPMD message-passing programs.

Rank programs are plain Python *generator functions*: they do their real
numerical work with NumPy and ``yield`` operation records whenever they
consume virtual time (compute) or interact with other ranks (send/recv).
The engine advances whichever runnable rank has the smallest virtual clock,
so execution order is deterministic and approximately global-time ordered,
which keeps the network contention model honest.

A minimal rank program::

    def program(ctx):
        data = np.arange(4.0) * ctx.rank
        yield ctx.compute(flops=1000)          # charge useful work
        if ctx.rank == 0:
            yield ctx.send(1, data)
        elif ctx.rank == 1:
            data = yield ctx.recv(0)
        return data.sum()

    result = Engine(machine).run(program)

Real payloads travel through the simulator (arrays are copied at the send
boundary), so a parallel algorithm's output can be validated against its
sequential reference — the machine model affects *time*, never *values*.

Accounting follows Appendix B's performance-budget definitions:

* ``comm``  — time from initiating a communication call until it returns
  (including time blocked in a receive).
* ``work``  — useful computation.
* ``redundancy`` — duplicated or parallelization-only computation, charged
  via :meth:`RankContext.compute` with ``redundant=True``.
* ``imbalance`` — finish-time skew, assigned post-run as
  ``elapsed - rank_finish_time``.
"""

from __future__ import annotations

import heapq
import pickle
from dataclasses import dataclass, field

import numpy as np

from repro.errors import (
    CommunicationError,
    ConfigurationError,
    DeadlockError,
    RankCrashError,
    RecvTimeoutError,
    SimulationError,
    TransportError,
)
from repro.machines.cpu import CpuModel
from repro.machines.network import ContentionNetwork
from repro.wavelet.cost import OpCount

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "CorruptedPayload",
    "Machine",
    "RankContext",
    "Engine",
    "RankBudget",
    "RunResult",
    "TraceEvent",
    "payload_nbytes",
]

ANY_SOURCE = -1
ANY_TAG = -1


@dataclass(frozen=True)
class CorruptedPayload:
    """What arrives in place of a payload mangled on the wire (raw fault
    mode, ``FaultConfig(reliable=False)``).

    The content is gone but the wire size is preserved so timing stays
    honest; receivers (e.g. the reliable transport in
    :mod:`repro.machines.faults.transport`) detect corruption with an
    ``isinstance`` check, the moral equivalent of a failed checksum.
    """

    nbytes: int


def payload_nbytes(payload) -> int:
    """Estimate the wire size of a payload.

    NumPy arrays report their buffer size; scalars are 8 bytes; containers
    sum their items plus a small per-item header; anything else falls back
    to its pickle length.
    """
    if payload is None:
        return 0
    if isinstance(payload, CorruptedPayload):
        return payload.nbytes
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bool, int, float, complex, np.generic)):
        return 8
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode())
    if isinstance(payload, (tuple, list)):
        return sum(payload_nbytes(item) + 8 for item in payload)
    if isinstance(payload, dict):
        return sum(
            payload_nbytes(k) + payload_nbytes(v) + 16 for k, v in payload.items()
        )
    return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))


def _copy_payload(payload):
    """Copy mutable payloads at the send boundary (message-passing has
    value semantics; without the copy a sender could mutate in-flight
    data, which no real machine allows)."""
    if isinstance(payload, np.ndarray):
        return payload.copy()
    if isinstance(payload, (tuple, list)):
        return type(payload)(_copy_payload(item) for item in payload)
    if isinstance(payload, dict):
        return {k: _copy_payload(v) for k, v in payload.items()}
    return payload


# --------------------------------------------------------------------------
# Operation records yielded by rank programs
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class _SendOp:
    dst: int
    payload: object
    tag: int
    nbytes: int


@dataclass(frozen=True)
class _JammedFate:
    """Stand-in for a :class:`~repro.machines.faults.plan.MessageFate`
    on a jammed channel: every transmission attempt is lost.  Defined
    here (not imported) because :mod:`repro.machines.faults.plan` imports
    from this module."""

    delivered: bool = False
    corrupt: bool = False
    duplicate: bool = False
    extra_delay_s: float = 0.0


_JAMMED_FATE = _JammedFate()


@dataclass(frozen=True)
class _RecvOp:
    src: int
    tag: int
    timeout_s: float | None = None


@dataclass(frozen=True)
class _MsgMeta:
    """Causality metadata carried alongside an in-flight message when the
    engine is tracing: the send's identity and clock stamps, plus the
    contention-free arrival time for critical-path analysis."""

    msg_id: int
    lamport: int
    vclock: tuple
    sent_at: float
    min_arrive: float


@dataclass(frozen=True)
class _ComputeOp:
    ops: OpCount
    redundant: bool


@dataclass(frozen=True)
class _MemoryOp:
    resident_bytes: float


@dataclass(frozen=True)
class _ElapseOp:
    seconds: float
    kind: str


@dataclass(frozen=True)
class _CheckpointOp:
    state: object


class Machine:
    """A concrete machine instance: CPU model + network + rank placement.

    Parameters
    ----------
    name:
        Identifier used in reports.
    cpu:
        Per-node :class:`~repro.machines.cpu.CpuModel`.
    network:
        :class:`~repro.machines.network.ContentionNetwork` over the node
        topology.
    placement:
        ``placement[rank]`` is the node index hosting that rank.  Ranks
        must map to distinct nodes.
    sw_send_overhead_s / sw_recv_overhead_s:
        Software cost of posting a send / completing a receive.
    copy_bytes_per_s:
        CPU-side message-copy bandwidth (charged to the caller on both
        ends, on top of network time).
    speed_factors:
        Optional per-node speed factors modelling the report's Section 5.4
        observation that physically identical Paragon nodes ran at
        different speeds depending on their distance from the cooling
        system (up to 7% variability): a node with factor ``f`` executes
        compute ``1/f`` slower.  Dict (node -> factor) or per-node list.
    """

    def __init__(
        self,
        name: str,
        cpu: CpuModel,
        network: ContentionNetwork,
        placement,
        *,
        sw_send_overhead_s: float = 30e-6,
        sw_recv_overhead_s: float = 30e-6,
        copy_bytes_per_s: float = 200e6,
        speed_factors=None,
    ) -> None:
        self.name = name
        self.cpu = cpu
        self.network = network
        self.placement = list(placement)
        if len(set(self.placement)) != len(self.placement):
            raise ConfigurationError("placement maps two ranks to the same node")
        for node in self.placement:
            if not 0 <= node < network.topology.num_nodes:
                raise ConfigurationError(
                    f"placement node {node} outside the "
                    f"{network.topology.num_nodes}-node topology"
                )
        self.sw_send_overhead_s = sw_send_overhead_s
        self.sw_recv_overhead_s = sw_recv_overhead_s
        self.copy_bytes_per_s = copy_bytes_per_s
        if speed_factors is None:
            self.rank_speed = [1.0] * len(self.placement)
        else:
            factors = dict(speed_factors) if isinstance(speed_factors, dict) else None
            if factors is not None:
                self.rank_speed = [float(factors.get(node, 1.0)) for node in self.placement]
            else:
                speed_list = list(speed_factors)
                if len(speed_list) < network.topology.num_nodes:
                    raise ConfigurationError(
                        "speed_factors list must cover every topology node"
                    )
                self.rank_speed = [float(speed_list[node]) for node in self.placement]
        for factor in self.rank_speed:
            if factor <= 0:
                raise ConfigurationError("node speed factors must be positive")

    @property
    def nranks(self) -> int:
        """Number of ranks this machine instance hosts."""
        return len(self.placement)


class RankContext:
    """Per-rank handle passed to SPMD programs.

    Provides the operation constructors (``send``/``recv``/``compute``...)
    whose results the program must ``yield``, plus the rank's identity.
    """

    def __init__(self, rank: int, nranks: int, machine: Machine) -> None:
        self.rank = rank
        self.nranks = nranks
        self.machine = machine

    def send(self, dst: int, payload, *, tag: int = 0, nbytes: int | None = None):
        """Post a message to ``dst``.  Yield the returned op.

        Self-sends (``dst == self.rank``) are supported: the payload is
        buffered through the local-memory channel (charged at the
        network's ``local_bytes_per_s``) and matched by a later ``recv``
        from this rank, exactly like NX/MPI buffered self-messaging.
        Because they never touch a wire, self-sends are exempt from fault
        injection.
        """
        if not 0 <= dst < self.nranks:
            raise CommunicationError(f"send destination {dst} out of range")
        if tag < 0:
            raise CommunicationError(f"send tag must be >= 0, got {tag}")
        size = payload_nbytes(payload) if nbytes is None else int(nbytes)
        return _SendOp(dst=dst, payload=payload, tag=tag, nbytes=size)

    def recv(
        self, src: int = ANY_SOURCE, *, tag: int = ANY_TAG, timeout_s: float | None = None
    ):
        """Receive a message.  ``yield`` evaluates to the payload.

        With ``timeout_s`` set, the receive gives up once the rank has
        blocked that many virtual seconds without a matching message
        *arriving* in time: a :class:`~repro.errors.RecvTimeoutError`
        (a ``TimeoutError`` subclass) is thrown into the program at the
        blocked ``yield`` instead of the run deadlocking, so programs can
        retransmit or fall back.  A message whose arrival time lands
        beyond the deadline does not satisfy the receive (it stays queued
        for a later one).
        """
        if src != ANY_SOURCE and not 0 <= src < self.nranks:
            raise CommunicationError(f"recv source {src} out of range")
        if tag != ANY_TAG and tag < 0:
            # send() rejects negative tags, so a negative non-ANY_TAG recv
            # can never be matched and would silently deadlock.
            raise CommunicationError(
                f"recv tag must be >= 0 or ANY_TAG, got {tag}"
            )
        if timeout_s is not None and timeout_s <= 0:
            raise CommunicationError(f"recv timeout_s must be > 0, got {timeout_s}")
        return _RecvOp(src=src, tag=tag, timeout_s=timeout_s)

    def compute(
        self,
        *,
        flops: float = 0.0,
        intops: float = 0.0,
        memops: float = 0.0,
        redundant: bool = False,
    ):
        """Charge computation time.  ``redundant=True`` books it as
        parallelization redundancy instead of useful work."""
        return _ComputeOp(
            ops=OpCount(flops=flops, intops=intops, memops=memops), redundant=redundant
        )

    def charge(self, ops: OpCount, *, redundant: bool = False):
        """Charge a pre-built :class:`OpCount` (cost-model output)."""
        return _ComputeOp(ops=ops, redundant=redundant)

    def elapse(self, seconds: float, *, kind: str = "work"):
        """Charge raw virtual seconds to a budget category directly."""
        if kind not in ("work", "redundancy", "comm"):
            raise ConfigurationError(f"unknown budget kind {kind!r}")
        return _ElapseOp(seconds=float(seconds), kind=kind)

    def set_resident_memory(self, nbytes: float):
        """Declare the rank's resident-set size (drives the paging model)."""
        return _MemoryOp(resident_bytes=float(nbytes))

    def checkpoint(self, state):
        """Write ``state`` to simulated stable storage (survives crashes).

        The engine deep-copies the state at the call boundary and charges
        the serialization time (``payload_nbytes(state)`` at the
        machine's copy bandwidth) to the communication budget.  A
        checkpoint index *commits* once every rank has written it; on a
        :class:`~repro.errors.RankCrashError` the newest committed
        index and its per-rank states ride on the exception for the
        recovery driver (:func:`repro.machines.faults.run_with_recovery`).
        """
        return _CheckpointOp(state=state)


@dataclass
class RankBudget:
    """Per-rank virtual-time breakdown (Appendix B's performance budget)."""

    work_s: float = 0.0
    comm_s: float = 0.0
    redundancy_s: float = 0.0
    imbalance_s: float = 0.0

    @property
    def total_s(self) -> float:
        """Total accounted time including imbalance."""
        return self.work_s + self.comm_s + self.redundancy_s + self.imbalance_s

    def fractions(self) -> dict:
        """Budget shares in [0, 1], keyed like the paper's figures."""
        total = self.total_s
        if total <= 0.0:
            return {"work": 0.0, "comm": 0.0, "redundancy": 0.0, "imbalance": 0.0}
        return {
            "work": self.work_s / total,
            "comm": self.comm_s / total,
            "redundancy": self.redundancy_s / total,
            "imbalance": self.imbalance_s / total,
        }


@dataclass(frozen=True)
class TraceEvent:
    """One recorded engine event (when tracing is enabled).

    ``kind`` is one of ``compute``, ``redundancy``, ``send``, ``recv``;
    the interval ``[start_s, end_s)`` is in virtual time; ``peer`` is the
    other rank for messaging events (-1 otherwise), ``nbytes`` the message
    size (0 for compute).

    The remaining fields are the causality enrichment consumed by
    :mod:`repro.machines.causality` (excluded from equality so that
    comparisons over the classic six fields keep working):

    * ``tag`` — message tag (sends: as posted; recvs: of the matched
      message).
    * ``msg_id`` — engine-wide monotone id assigned to each send.
    * ``match_id`` — on a recv, the ``msg_id`` of the matched send.
    * ``wildcard_src`` / ``wildcard_tag`` — whether the recv was posted
      with ``ANY_SOURCE`` / ``ANY_TAG`` (nondeterminism surface).
    * ``arrive_s`` — when the matched message arrived (recvs only).
    * ``min_arrive_s`` — when it *would* have arrived on an uncontended
      network (recvs only); the causal lower bound uses this.
    * ``lamport`` / ``vclock`` — Lamport stamp and per-rank vector-clock
      stamp of the event (one tick per recorded event, merged on recv).
    """

    rank: int
    kind: str
    start_s: float
    end_s: float
    peer: int = -1
    nbytes: int = 0
    tag: int = field(default=-1, compare=False)
    msg_id: int = field(default=-1, compare=False)
    match_id: int = field(default=-1, compare=False)
    wildcard_src: bool = field(default=False, compare=False)
    wildcard_tag: bool = field(default=False, compare=False)
    arrive_s: float = field(default=-1.0, compare=False)
    min_arrive_s: float = field(default=-1.0, compare=False)
    lamport: int = field(default=0, compare=False)
    vclock: tuple = field(default=(), compare=False)


@dataclass
class RunResult:
    """Outcome of one SPMD execution."""

    elapsed_s: float
    results: list
    budgets: list
    finish_times: list
    messages_sent: int
    bytes_sent: int
    contention_s: float
    trace: list = None
    #: Fault-injection and recovery counters for the run (always present):
    #: retransmits, dropped, corrupted, duplicates, delayed, checkpoints.
    fault_stats: dict = None
    #: Engine-internals counters for the run (always present): ops retired
    #: (``events``), matcher mode, wildcard-heap activity, and route/path
    #: cache hits from the network layer.
    engine_stats: dict = None

    @property
    def nranks(self) -> int:
        """Number of ranks in the run."""
        return len(self.results)

    def mean_budget(self) -> RankBudget:
        """Budget averaged over ranks (the paper reports per-machine
        averages)."""
        n = max(1, len(self.budgets))
        return RankBudget(
            work_s=sum(b.work_s for b in self.budgets) / n,
            comm_s=sum(b.comm_s for b in self.budgets) / n,
            redundancy_s=sum(b.redundancy_s for b in self.budgets) / n,
            imbalance_s=sum(b.imbalance_s for b in self.budgets) / n,
        )

    def max_comm_s(self) -> float:
        """Maximum per-rank communication time (Appendix B Figure 10)."""
        return max((b.comm_s for b in self.budgets), default=0.0)

    def mean_comm_s(self) -> float:
        """Average per-rank communication time."""
        if not self.budgets:
            return 0.0
        return sum(b.comm_s for b in self.budgets) / len(self.budgets)


class _RankState:
    __slots__ = (
        "rank",
        "gen",
        "clock",
        "budget",
        "resident",
        "mailbox",
        "arrive_floor",
        "chan_popped",
        "wild_any",
        "wild_src",
        "wild_tag",
        "waiting",
        "deadline",
        "timeout_token",
        "pending_exc",
        "ckpts",
        "finished",
        "result",
        "pending_value",
        "lamport",
        "vc",
    )

    def __init__(self, rank: int, gen, nranks: int = 0) -> None:
        self.rank = rank
        self.gen = gen
        self.clock = 0.0
        self.budget = RankBudget()
        self.resident = 0.0
        self.mailbox: dict = {}
        # Per-(src, tag) watermark of the newest enqueued arrival time:
        # delivery is FIFO non-overtaking per channel (a fault-delayed
        # message holds back its successors, like an in-order transport).
        self.arrive_floor: dict = {}
        # Matching-index state (see Engine._match).  ``chan_popped`` counts
        # messages consumed per (src, tag) channel so wildcard-heap entries
        # can be lazily invalidated; the three heap families are created on
        # first use by the wildcard shape that needs them.
        self.chan_popped: dict = {}
        self.wild_any = None  # heap of (arrive, src, tag, idx) | None
        self.wild_src: dict = {}  # src -> heap of (arrive, tag, idx)
        self.wild_tag: dict = {}  # tag -> heap of (arrive, src, idx)
        self.waiting = None
        self.deadline = None  # absolute virtual time the parked recv times out
        self.timeout_token = 0  # invalidates stale timeout wake-ups
        self.pending_exc = None  # exception to throw into the generator
        self.ckpts: list = []  # checkpoint states written by this rank
        self.finished = False
        self.result = None
        self.pending_value = None
        self.lamport = 0
        # Vector clocks are O(P) per rank; untraced runs pass nranks=0 and
        # carry no clock state at all (satellite: zero vclock cost untraced).
        self.vc = [0] * nranks if nranks else None


class Engine:
    """Runs SPMD generator programs on a :class:`Machine` in virtual time.

    Pass ``record_trace=True`` to collect a :class:`TraceEvent` list on
    the :class:`RunResult` (compute/send/recv intervals per rank), which
    :func:`repro.perf.format_timeline` renders as an ASCII Gantt chart.

    Pass ``faults`` (a :class:`repro.machines.faults.FaultPlan`) to run
    the program on an imperfect machine: seeded message drop / duplicate /
    corruption / delay, per-link transient slowdowns, rank stragglers, and
    fail-stop rank crashes at virtual times, all perfectly reproducible.
    With the plan's default ``reliable=True`` transport, lost attempts are
    retransmitted (exponential backoff charged in virtual time) so program
    *values* are unaffected — only the schedule and the budgets change.

    ``matcher`` selects the mailbox-matching implementation: ``"indexed"``
    (the default — O(1) exact-key lookup plus arrival-ordered wildcard
    heaps) or ``"linear"`` (the original full-mailbox scan, retained as
    the differential-testing reference and benchmark baseline).  The two
    are bitwise-equivalent: both implement the documented
    ``(arrive, (src, tag))`` lexicographic matching rule.
    """

    def __init__(
        self,
        machine: Machine,
        *,
        record_trace: bool = False,
        faults=None,
        matcher: str = "indexed",
    ) -> None:
        if matcher not in ("indexed", "linear"):
            raise ConfigurationError(
                f"unknown matcher {matcher!r}; use 'indexed' or 'linear'"
            )
        self.machine = machine
        self.record_trace = record_trace
        self.faults = faults
        self.matcher = matcher
        self.fault_stats: dict = {}
        self.engine_stats: dict = {}
        self._trace: list = []
        self._next_msg_id = 0
        self._msg_counter = 0
        self._seq = 0
        self._events = 0
        self._wildcard_matches = 0
        self._wildcard_backfills = 0

    def _record(self, rank, kind, start, end, peer=-1, nbytes=0, **causal) -> None:
        if self.record_trace:
            self._trace.append(
                TraceEvent(
                    rank=rank, kind=kind, start_s=start, end_s=end, peer=peer,
                    nbytes=nbytes, **causal,
                )
            )

    def _stamp(self, st: "_RankState") -> tuple:
        """Tick the rank's Lamport and vector clocks for one event and
        return the ``(lamport, vclock)`` stamp.  Only called while
        tracing."""
        st.lamport += 1
        st.vc[st.rank] += 1
        return st.lamport, tuple(st.vc)

    def run(self, program, *args, **kwargs) -> RunResult:
        """Instantiate ``program(ctx, *args, **kwargs)`` on every rank and
        drive the system to completion.

        Returns
        -------
        RunResult
            Elapsed virtual time, per-rank return values and budgets, and
            network counters.

        Raises
        ------
        DeadlockError
            If every unfinished rank is blocked in a receive that no
            in-flight or future message can satisfy.
        RankCrashError
            If a fault-plan crash fires (fail-stop: the whole run aborts
            at the crash instant, carrying the newest committed
            checkpoint for recovery).
        """
        machine = self.machine
        machine.network.reset()
        self._trace = []
        self._next_msg_id = 0
        self._msg_counter = 0
        self._seq = 0
        self._events = 0
        self._wildcard_matches = 0
        self._wildcard_backfills = 0
        self.fault_stats = {
            "retransmits": 0,
            "dropped": 0,
            "corrupted": 0,
            "duplicates": 0,
            "delayed": 0,
            "checkpoints": 0,
        }
        machine.network.link_slowdown = (
            self.faults.link_factor
            if self.faults is not None and self.faults.has_link_slowdowns
            else None
        )
        nranks = machine.nranks
        states = []
        for rank in range(nranks):
            ctx = RankContext(rank, nranks, machine)
            gen = program(ctx, *args, **kwargs)
            if not hasattr(gen, "send"):
                raise ConfigurationError(
                    "rank program must be a generator function (use 'yield')"
                )
            states.append(_RankState(rank, gen, nranks if self.record_trace else 0))

        # Heap entries are (time, rank, seq, kind).  "run" entries obey the
        # one-entry-per-rank invariant via in_heap; "timeout" and "crash"
        # sentinels are extra wake-ups validated at pop time.
        heap: list = []
        for st in states:
            heapq.heappush(heap, (st.clock, st.rank, self._next_seq(), "run"))
        in_heap = [True] * nranks
        if self.faults is not None:
            for rank, t_crash in sorted(self.faults.crash_schedule.items()):
                if 0 <= rank < nranks:
                    heapq.heappush(heap, (t_crash, rank, self._next_seq(), "crash"))

        while heap:
            t_pop, rank, seq, kind = heapq.heappop(heap)
            st = states[rank]
            if kind == "crash":
                if st.finished:
                    continue  # crash scheduled past program completion
                self._raise_crash(rank, max(st.clock, t_pop), states)
            if kind == "timeout":
                # Valid only if the rank is still parked on the same
                # timed receive this sentinel was armed for.
                if st.waiting is None or seq != st.timeout_token:
                    continue
                self._advance(st, states, heap, in_heap, t_pop)
                continue
            in_heap[rank] = False
            if st.finished:
                continue
            self._advance(st, states, heap, in_heap, t_pop)

        unfinished = {st.rank: st.waiting for st in states if not st.finished}
        if unfinished:
            raise DeadlockError(unfinished)

        finish_times = [st.clock for st in states]
        elapsed = max(finish_times)
        for st in states:
            st.budget.imbalance_s = elapsed - st.clock

        network = machine.network
        route_hits, route_misses = network.topology.route_cache_stats()
        self.engine_stats = {
            "matcher": self.matcher,
            "events": self._events,
            "wildcard_matches": self._wildcard_matches,
            "wildcard_backfills": self._wildcard_backfills,
            "route_cache_hits": route_hits,
            "route_cache_misses": route_misses,
            "path_cache_hits": getattr(network, "path_cache_hits", 0),
            "path_cache_misses": getattr(network, "path_cache_misses", 0),
        }
        return RunResult(
            elapsed_s=elapsed,
            results=[st.result for st in states],
            budgets=[st.budget for st in states],
            finish_times=finish_times,
            messages_sent=machine.network.messages_sent,
            bytes_sent=machine.network.bytes_sent,
            contention_s=machine.network.total_contention_s,
            trace=self._trace if self.record_trace else None,
            fault_stats=self.fault_stats,
            engine_stats=self.engine_stats,
        )

    # -- scheduling internals ------------------------------------------------

    def _next_seq(self) -> int:
        """Monotone tie-breaker for heap entries (deterministic, unlike
        ``id()``)."""
        self._seq += 1
        return self._seq

    def _push(self, st: _RankState, heap: list, in_heap: list) -> None:
        if not in_heap[st.rank] and not st.finished:
            heapq.heappush(heap, (st.clock, st.rank, self._next_seq(), "run"))
            in_heap[st.rank] = True

    def _raise_crash(self, rank: int, at_s: float, states) -> None:
        """Fail-stop abort: find the newest globally committed checkpoint
        and raise."""
        committed = min(len(st.ckpts) for st in states) - 1
        snapshot = None
        if committed >= 0:
            snapshot = [st.ckpts[committed] for st in states]
        raise RankCrashError(rank, at_s, committed, snapshot)

    def _advance(
        self, st: _RankState, states, heap, in_heap, now: float | None = None
    ) -> None:
        """Advance one rank until it blocks, finishes, or completes one op.

        ``now`` is the virtual time of the heap entry that woke the rank;
        a parked timed receive uses it to decide whether its deadline has
        been reached.
        """
        machine = self.machine
        while True:
            if st.waiting is not None:
                # Parked on a recv: try to complete it now.
                matched = self._match(st, st.waiting, before=st.deadline)
                if matched is not None:
                    self._complete_recv(st, st.waiting, matched)
                    st.waiting = None
                    st.deadline = None
                    st.timeout_token = -1  # disarm any pending timeout sentinel
                    # fall through to resume the generator with the payload
                elif (
                    st.deadline is not None
                    and now is not None
                    and now >= st.deadline
                ):
                    self._fire_timeout(st)
                    # fall through to throw into the generator
                else:
                    return  # stay parked; a future send or timeout will wake us

            try:
                if st.pending_exc is not None:
                    exc, st.pending_exc = st.pending_exc, None
                    op = st.gen.throw(exc)
                else:
                    value, st.pending_value = st.pending_value, None
                    op = st.gen.send(value)
            except StopIteration as stop:
                st.finished = True
                st.result = stop.value
                return

            self._events += 1
            if isinstance(op, _ComputeOp):
                dt = machine.cpu.seconds_for(op.ops, st.resident) / machine.rank_speed[
                    st.rank
                ]
                if self.faults is not None:
                    dt *= self.faults.straggler_factor(st.rank, st.clock)
                start = st.clock
                st.clock += dt
                kind = "redundancy" if op.redundant else "compute"
                if op.redundant:
                    st.budget.redundancy_s += dt
                else:
                    st.budget.work_s += dt
                self._record_local(st, kind, start)
            elif isinstance(op, _ElapseOp):
                start = st.clock
                st.clock += op.seconds
                if op.kind == "work":
                    st.budget.work_s += op.seconds
                    self._record_local(st, "compute", start)
                elif op.kind == "redundancy":
                    st.budget.redundancy_s += op.seconds
                    self._record_local(st, "redundancy", start)
                else:
                    st.budget.comm_s += op.seconds
                    self._record_local(st, "send", start)
            elif isinstance(op, _MemoryOp):
                st.resident = op.resident_bytes
            elif isinstance(op, _CheckpointOp):
                self._do_checkpoint(st, op)
            elif isinstance(op, _SendOp):
                self._do_send(st, op, states, heap, in_heap)
            elif isinstance(op, _RecvOp):
                deadline = (
                    st.clock + op.timeout_s if op.timeout_s is not None else None
                )
                matched = self._match(st, op, before=deadline)
                if matched is None:
                    st.waiting = op
                    st.deadline = deadline
                    if deadline is not None:
                        st.timeout_token = self._next_seq()
                        heapq.heappush(
                            heap, (deadline, st.rank, st.timeout_token, "timeout")
                        )
                    return
                self._complete_recv(st, op, matched)
            else:
                raise SimulationError(f"rank {st.rank} yielded unknown op {op!r}")

            # After a state change our clock may no longer be minimal;
            # requeue and let the scheduler pick the next rank.
            self._push(st, heap, in_heap)
            return

    def _record_local(self, st: _RankState, kind: str, start: float) -> None:
        """Record a non-messaging event, stamping it if tracing."""
        if not self.record_trace:
            return
        lamport, vclock = self._stamp(st)
        self._record(
            st.rank, kind, start, st.clock, lamport=lamport, vclock=vclock
        )

    def _fire_timeout(self, st: _RankState) -> None:
        """Expire a parked timed receive: charge the blocked time, record
        the failed wait, and arrange for :class:`RecvTimeoutError` to be
        thrown into the program."""
        op = st.waiting
        start = st.clock
        st.budget.comm_s += st.deadline - st.clock
        st.clock = st.deadline
        if self.record_trace:
            lamport, vclock = self._stamp(st)
            self._record(
                st.rank, "recv", start, st.clock,
                peer=op.src, nbytes=0, tag=op.tag,
                wildcard_src=op.src == ANY_SOURCE,
                wildcard_tag=op.tag == ANY_TAG,
                lamport=lamport, vclock=vclock,
            )
        st.pending_exc = RecvTimeoutError(
            st.rank, op.src, op.tag, op.timeout_s, st.clock
        )
        st.waiting = None
        st.deadline = None
        st.timeout_token = -1

    def _do_checkpoint(self, st: _RankState, op: _CheckpointOp) -> None:
        """Write a rank-local checkpoint to simulated stable storage."""
        machine = self.machine
        nbytes = payload_nbytes(op.state)
        dt = machine.sw_send_overhead_s + nbytes / machine.copy_bytes_per_s
        start = st.clock
        st.clock += dt
        st.budget.comm_s += dt
        st.ckpts.append(_copy_payload(op.state))
        self.fault_stats["checkpoints"] += 1
        if self.record_trace:
            lamport, vclock = self._stamp(st)
            self._record(
                st.rank, "checkpoint", start, st.clock, nbytes=nbytes,
                lamport=lamport, vclock=vclock,
            )

    def _do_send(self, st: _RankState, op: _SendOp, states, heap, in_heap) -> None:
        machine = self.machine
        overhead = machine.sw_send_overhead_s + op.nbytes / machine.copy_bytes_per_s
        start = st.clock
        st.clock += overhead
        st.budget.comm_s += overhead
        src_node = machine.placement[st.rank]
        dst_node = machine.placement[op.dst]
        contention_before = machine.network.total_contention_s
        action = None
        if self.faults is not None and op.dst != st.rank:
            intercept = getattr(self.faults, "intercept_send", None)
            if intercept is not None:
                action = intercept(st.rank, op.dst, op.tag, op.payload, st.clock)
                if action is not None and action.replace:
                    op = _SendOp(op.dst, action.payload, op.tag, op.nbytes)
        if action is not None and not action.deliver:
            if action.jam:
                # Wire-level jamming: the reliable transport hammers the
                # dead channel until its retransmission budget raises.
                deliver, deliveries = self._faulty_transfer(
                    st, op, src_node, dst_node, force_drop=True
                )
            else:
                # Application-level silence: the hostile NIC never puts
                # the envelope on the wire, so nothing arrives, ever.
                deliver, deliveries = st.clock, []
        elif self.faults is None or op.dst == st.rank:
            # Self-sends never touch a wire, so they are never faulted.
            deliver = machine.network.transfer(src_node, dst_node, op.nbytes, st.clock)
            deliveries = [(deliver, op.payload)]
        else:
            deliver, deliveries = self._faulty_transfer(st, op, src_node, dst_node)
        if action is not None and deliveries:
            if action.extra_delay_s > 0.0:
                deliver += action.extra_delay_s
                deliveries = [
                    (arrive + action.extra_delay_s, payload)
                    for arrive, payload in deliveries
                ]
            if action.replay:
                # Stale duplicate of the channel's previous payload
                # front-runs the real message: it is enqueued first, so
                # the receiver's next recv on the channel consumes the
                # replayed payload while the real one rides behind.
                dup = machine.network.transfer(
                    src_node, dst_node, op.nbytes, st.clock
                )
                deliveries = [(dup, action.replay_payload)] + deliveries
        meta = None
        if self.record_trace:
            # Contention-free arrival: transfer() books any wait for busy
            # channels as contention, so subtracting the delta isolates it.
            waited = machine.network.total_contention_s - contention_before
            msg_id = self._next_msg_id
            self._next_msg_id += 1
            lamport, vclock = self._stamp(st)
            meta = _MsgMeta(
                msg_id=msg_id,
                lamport=lamport,
                vclock=vclock,
                sent_at=st.clock,
                min_arrive=deliver - waited,
            )
            self._record(
                st.rank, "send", start, st.clock, op.dst, op.nbytes,
                tag=op.tag, msg_id=msg_id, lamport=lamport, vclock=vclock,
            )
        dst = states[op.dst]
        key = (st.rank, op.tag)
        for arrive, payload in deliveries:
            # In-order transport: a delayed message holds back later ones
            # on the same (src, tag) channel (no-op on a fault-free run,
            # where per-path serialization already makes arrivals monotone).
            arrive = max(arrive, dst.arrive_floor.get(key, 0.0))
            dst.arrive_floor[key] = arrive
            self._enqueue(dst, key, arrive, _copy_payload(payload), meta)
        if action is not None and action.spam:
            # Junk flood: each copy genuinely occupies the network but
            # lands on the dedicated spam channel (never matched by a
            # concrete-tag receive).
            for spam_tag, spam_payload, spam_nbytes in action.spam:
                spam_arrive = machine.network.transfer(
                    src_node, dst_node, spam_nbytes, st.clock
                )
                spam_key = (st.rank, spam_tag)
                spam_arrive = max(spam_arrive, dst.arrive_floor.get(spam_key, 0.0))
                dst.arrive_floor[spam_key] = spam_arrive
                self._enqueue(dst, spam_key, spam_arrive, spam_payload, None)
        if dst.waiting is not None and (deliveries or (action is not None and action.spam)):
            self._push(dst, heap, in_heap)

    def _faulty_transfer(
        self, st: _RankState, op: _SendOp, src_node, dst_node, *, force_drop=False
    ):
        """Ship one message across the faulty network.

        Returns ``(last_wire_arrival, deliveries)`` where ``deliveries``
        is the list of ``(arrive_time, payload)`` copies to enqueue at the
        destination (empty for a raw-mode drop).

        Reliable mode models an ack/retransmit transport: every lost or
        corrupted attempt is re-sent after an exponentially backed-off
        timeout (``rto_s * backoff**attempt``), each attempt genuinely
        occupying the network, until the payload lands intact.  The
        sender does not block (the transport is asynchronous); the cost
        shows up as delivery latency and wasted wire traffic.

        ``force_drop=True`` models a jammed channel (an adversary eating
        every transmission): reliable mode exhausts its retransmission
        budget and raises; raw mode loses the single attempt.
        """
        plan = self.faults
        cfg = plan.config
        network = self.machine.network
        stats = self.fault_stats
        msg_index = self._msg_counter
        self._msg_counter += 1
        if cfg.reliable:
            inject = st.clock
            attempt = 0
            while True:
                fate = _JAMMED_FATE if force_drop else plan.message_fate(msg_index, attempt)
                deliver = network.transfer(src_node, dst_node, op.nbytes, inject)
                if fate.duplicate:
                    # The spurious copy burns bandwidth; the transport's
                    # sequence numbers discard it at the receiver.
                    stats["duplicates"] += 1
                    network.transfer(src_node, dst_node, op.nbytes, inject)
                if fate.delivered and not fate.corrupt:
                    if fate.extra_delay_s > 0.0:
                        stats["delayed"] += 1
                    deliver += fate.extra_delay_s
                    return deliver, [(deliver, op.payload)]
                stats["dropped" if not fate.delivered else "corrupted"] += 1
                if attempt >= cfg.max_retries:
                    raise TransportError(
                        f"rank {st.rank} -> {op.dst} (tag {op.tag}): message "
                        f"lost {attempt + 1} times; retransmission budget "
                        f"exhausted"
                    )
                # Ack timeout, then retransmit.
                inject += cfg.rto_s * (cfg.backoff ** attempt)
                attempt += 1
                stats["retransmits"] += 1
        # Raw mode: the program sees the lossy channel as-is.
        fate = _JAMMED_FATE if force_drop else plan.message_fate(msg_index, 0)
        deliver = network.transfer(src_node, dst_node, op.nbytes, st.clock)
        if not fate.delivered:
            stats["dropped"] += 1
            return deliver, []
        payload = op.payload
        if fate.corrupt:
            stats["corrupted"] += 1
            payload = CorruptedPayload(op.nbytes)
        if fate.extra_delay_s > 0.0:
            stats["delayed"] += 1
        deliveries = [(deliver + fate.extra_delay_s, payload)]
        if fate.duplicate:
            stats["duplicates"] += 1
            dup = network.transfer(src_node, dst_node, op.nbytes, st.clock)
            deliveries.append((dup + fate.extra_delay_s, payload))
        return deliver, deliveries

    # -- mailbox matching ----------------------------------------------------
    #
    # Both matchers implement the same documented rule: the earliest-
    # arriving matching message wins, ties on arrival time break on the
    # smallest (src, tag) pair — the (arrive, (src, tag)) lexicographic
    # minimum.  Per-channel arrivals are monotone non-decreasing
    # (arrive_floor enforces FIFO non-overtaking), so only each queue's
    # head can ever be the minimum, which is what makes heap indexing of
    # channel heads sound.

    def _enqueue(self, dst: _RankState, key, arrive, payload, meta) -> None:
        """Append a message to ``dst``'s mailbox and mirror it into any
        wildcard heaps that already exist for its shape.

        The heap entry's ``idx`` is the message's absolute position on its
        channel (messages popped so far + queue length before the append);
        an entry is stale once ``chan_popped`` has moved past it.
        """
        queue = dst.mailbox.get(key)
        if queue is None:
            queue = dst.mailbox[key] = []
        idx = dst.chan_popped.get(key, 0) + len(queue)
        queue.append((arrive, payload, meta))
        src, tag = key
        heap = dst.wild_any
        if heap is not None:
            heapq.heappush(heap, (arrive, src, tag, idx))
        heap = dst.wild_src.get(src)
        if heap is not None:
            heapq.heappush(heap, (arrive, tag, idx))
        heap = dst.wild_tag.get(tag)
        if heap is not None:
            heapq.heappush(heap, (arrive, src, idx))

    def _pop_channel(self, st: _RankState, key):
        """Consume the head of one mailbox channel, advancing its pop
        counter so stale wildcard-heap entries are recognized."""
        st.chan_popped[key] = st.chan_popped.get(key, 0) + 1
        return st.mailbox[key].pop(0)

    def _wildcard_heap(self, st: _RankState, src: int, tag: int) -> list:
        """The heap serving a wildcard shape, built on first use from the
        mailbox's current contents (so externally seeded mailboxes work)."""
        if src == ANY_SOURCE and tag == ANY_TAG:
            heap = st.wild_any
            if heap is None:
                heap = st.wild_any = self._backfill_heap(st, None, None)
            return heap
        if tag == ANY_TAG:
            heap = st.wild_src.get(src)
            if heap is None:
                heap = st.wild_src[src] = self._backfill_heap(st, src, None)
            return heap
        heap = st.wild_tag.get(tag)
        if heap is None:
            heap = st.wild_tag[tag] = self._backfill_heap(st, None, tag)
        return heap

    def _backfill_heap(self, st: _RankState, src, tag) -> list:
        """Index every queued message matching the (src, tag) filter
        (``None`` = wildcard).  Entry tuples are ordered so the heap
        minimum IS the (arrive, (src, tag)) lexicographic minimum."""
        self._wildcard_backfills += 1
        heap: list = []
        popped = st.chan_popped
        # Order-insensitive: heapify sorts the entries, so mailbox
        # insertion order cannot leak into matching.
        # lint: disable-next=DET-DICT-ITERATION
        for (q_src, q_tag), queue in st.mailbox.items():
            if not queue:
                continue
            if src is not None and q_src != src:
                continue
            if tag is not None and q_tag != tag:
                continue
            base = popped.get((q_src, q_tag), 0)
            if src is None and tag is None:
                for off, entry in enumerate(queue):
                    heap.append((entry[0], q_src, q_tag, base + off))
            elif tag is None:
                for off, entry in enumerate(queue):
                    heap.append((entry[0], q_tag, base + off))
            else:
                for off, entry in enumerate(queue):
                    heap.append((entry[0], q_src, base + off))
        heapq.heapify(heap)
        return heap

    def _match(self, st: _RankState, op: _RecvOp, before: float | None = None):
        """Find the earliest-arriving mailbox entry matching a recv.

        Ties on arrival time break on the smallest ``(src, tag)`` pair —
        the ``(arrive, (src, tag))`` lexicographic rule.  With ``before``
        set (a timed receive's deadline), messages arriving strictly
        after it cannot satisfy the receive and stay queued.
        """
        if self.matcher == "linear":
            return self._match_linear(st, op, before)
        src, tag = op.src, op.tag
        if src != ANY_SOURCE and tag != ANY_TAG:
            # Exact-key receive: one dict lookup, no scan.
            key = (src, tag)
            queue = st.mailbox.get(key)
            if not queue:
                return None
            if before is not None and queue[0][0] > before:
                return None
            return key, self._pop_channel(st, key)
        heap = self._wildcard_heap(st, src, tag)
        mailbox = st.mailbox
        popped = st.chan_popped
        while heap:
            entry = heap[0]
            if src == ANY_SOURCE and tag == ANY_TAG:
                arrive, e_src, e_tag, idx = entry
            elif tag == ANY_TAG:
                arrive, e_tag, idx = entry
                e_src = src
            else:
                arrive, e_src, idx = entry
                e_tag = tag
            key = (e_src, e_tag)
            queue = mailbox.get(key)
            if not queue or idx != popped.get(key, 0):
                # Stale: that message was consumed through another recv
                # shape (lazy deletion).
                heapq.heappop(heap)
                continue
            if before is not None and arrive > before:
                # The heap minimum already arrives past the deadline, so
                # every other candidate does too.
                return None
            heapq.heappop(heap)
            self._wildcard_matches += 1
            return key, self._pop_channel(st, key)
        return None

    def _match_linear(self, st: _RankState, op: _RecvOp, before: float | None = None):
        """Reference matcher: full scan over every (src, tag) queue.

        Kept verbatim as the differential-testing oracle for the indexed
        matcher and as the benchmark baseline (``Engine(matcher="linear")``).
        """
        best_key = None
        best_arrive = None
        # Order-insensitive: the loop reduces to a lexicographic minimum,
        # so mailbox insertion order cannot leak into matching.
        # lint: disable-next=DET-DICT-ITERATION
        for (src, tag), queue in st.mailbox.items():
            if not queue:
                continue
            if op.src != ANY_SOURCE and src != op.src:
                continue
            if op.tag != ANY_TAG and tag != op.tag:
                continue
            arrive = queue[0][0]
            if before is not None and arrive > before:
                continue
            if (
                best_arrive is None
                or arrive < best_arrive
                or (arrive == best_arrive and (src, tag) < best_key)
            ):
                best_arrive, best_key = arrive, (src, tag)
        if best_key is None:
            return None
        return best_key, self._pop_channel(st, best_key)

    def _complete_recv(self, st: _RankState, op: _RecvOp, matched) -> None:
        machine = self.machine
        (src, tag), (arrive, payload, meta) = matched
        nbytes = payload_nbytes(payload)
        copy_time = nbytes / machine.copy_bytes_per_s
        done = max(st.clock, arrive) + machine.sw_recv_overhead_s + copy_time
        if self.record_trace and meta is not None:
            # Merge the sender's clocks before ticking: the recv event
            # must causally dominate the matched send.
            if meta.lamport > st.lamport:
                st.lamport = meta.lamport
            for i, v in enumerate(meta.vclock):
                if v > st.vc[i]:
                    st.vc[i] = v
            lamport, vclock = self._stamp(st)
            self._record(
                st.rank, "recv", st.clock, done, src, nbytes,
                tag=tag, match_id=meta.msg_id,
                wildcard_src=op.src == ANY_SOURCE,
                wildcard_tag=op.tag == ANY_TAG,
                arrive_s=arrive, min_arrive_s=meta.min_arrive,
                lamport=lamport, vclock=vclock,
            )
        st.budget.comm_s += done - st.clock
        st.clock = done
        st.pending_value = payload
