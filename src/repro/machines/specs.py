"""Calibrated machine specifications.

Each factory builds a :class:`~repro.machines.engine.Machine` whose virtual
clock reproduces the *ratios* reported in the paper — we make no claim of
absolute-seconds fidelity to 1995 hardware, but the comparative tables and
speedup-curve shapes are calibrated against the report's measurements:

* **Paragon (i860 nodes, 4-wide mesh).**  The serial wavelet times in
  Appendix A Table 1 (4.227 / 3.45 / 2.78 s for F8L1 / F4L2 / F2L4) fit a
  per-filter-output cost of ``A + B*m`` microseconds with A=2.61, B=0.68.
  With the cost model charging ``2m-1`` flops, ``m+1`` memops and 6 intops
  per output, that pins the effective sustained rates used below
  (flops 4.0 M/s, memops 5.5 M/s, intops 2.24 M/s — "effective" rates of
  unoptimized early-90s compiled C, not peak silicon).
* **DEC 5000 workstation.**  Same fit against 5.47 / 4.54 / 4.11 s gives
  A=4.36, B=0.76 and the rates below.
* **Cray T3D (Alpha nodes).**  Appendix B Tables 1-2: the integer-heavy
  N-body ran up to ~10x faster on the Alpha while memory-heavy PIC saw
  only ~1.3-3x — hence the asymmetric rate scaling (intops x10,
  flops x3, memops x2.5 relative to the i860).
* **Paging.**  Appendix B Table 1 shows serial 1M-particle PIC blowing up
  5.4x (m=32) and 14x (m=64) past the 32 MB node memory; fitting the
  resident-set overflow model gives ``alpha=21, beta=2.5``, with paging
  onset at ~640K particles (48 B/particle) exactly as Figure 9 reports.

Placement helpers implement the two stripe-to-node mappings of Appendix A
Figure 4: naive row-major, and the snake (boustrophedon) order that keeps
logical neighbors at physical distance one.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.machines.cpu import CpuModel
from repro.machines.engine import Machine
from repro.machines.network import ContentionNetwork, FullyConnected, Mesh2D, Torus3D

__all__ = [
    "PARAGON_MESH_WIDTH",
    "PARAGON_MESH_HEIGHT",
    "paragon_cpu",
    "t3d_cpu",
    "workstation_cpu",
    "snake_placement",
    "row_major_placement",
    "cooling_gradient_factors",
    "paragon",
    "scaled_mesh",
    "scaled_torus",
    "t3d",
    "workstation",
]

# The JPL Paragon: 64 nodes in a 16x4 mesh.  Figure 4 draws the allocation
# as rows of four, so the mesh is 4 columns wide by 16 rows tall.
PARAGON_MESH_WIDTH = 4
PARAGON_MESH_HEIGHT = 16


def paragon_cpu() -> CpuModel:
    """Effective i860 GP-node rates (see module docstring for calibration)."""
    return CpuModel(
        flops_per_s=4.0e6,
        intops_per_s=2.24e6,
        memops_per_s=5.5e6,
        memory_bytes=32e6,
        paging_alpha=21.0,
        paging_beta=2.5,
    )


def t3d_cpu() -> CpuModel:
    """Effective 150 MHz Alpha rates; note the strong integer advantage.

    Node memory is 16 MB with ~12 MB usable, but Appendix B's serial T3D
    table shows no paging blow-up (measurements were taken where data
    fit), so the spec disables the paging regime by granting headroom.
    """
    return CpuModel(
        flops_per_s=12.0e6,
        intops_per_s=22.4e6,
        memops_per_s=13.8e6,
        memory_bytes=256e6,
        paging_alpha=21.0,
        paging_beta=2.5,
    )


def workstation_cpu() -> CpuModel:
    """Effective DEC 5000/200 rates fitted to Appendix A Table 1."""
    return CpuModel(
        flops_per_s=3.57e6,
        intops_per_s=1.35e6,
        memops_per_s=5.0e6,
        memory_bytes=64e6,
    )


def row_major_placement(nranks: int, width: int = PARAGON_MESH_WIDTH) -> list:
    """The "straightforward" distribution: rank *i* on node *i* in row-major
    mesh order.  Logical neighbors at row boundaries end up a full mesh row
    apart, which Section 5.1 identifies as the scalability killer."""
    if nranks < 1:
        raise ConfigurationError(f"nranks must be >= 1, got {nranks}")
    return list(range(nranks))


def snake_placement(nranks: int, width: int = PARAGON_MESH_WIDTH) -> list:
    """Figure 4's snake-like allocation: even mesh rows left-to-right, odd
    rows right-to-left, so consecutive ranks are always physically
    adjacent."""
    if nranks < 1:
        raise ConfigurationError(f"nranks must be >= 1, got {nranks}")
    nodes = []
    rank = 0
    row = 0
    while rank < nranks:
        cols = range(width) if row % 2 == 0 else range(width - 1, -1, -1)
        for col in cols:
            if rank >= nranks:
                break
            nodes.append(row * width + col)
            rank += 1
        row += 1
    return nodes


def cooling_gradient_factors(
    width: int = PARAGON_MESH_WIDTH,
    height: int = PARAGON_MESH_HEIGHT,
    variability: float = 0.07,
) -> list:
    """Per-node speed factors for the Section 5.4 'physical effects'
    observation: "processors that are physically closer to the cooling
    system tend to run slower ... up to 7% variability".

    The cooling system sits at mesh row 0; speed rises linearly with
    distance from it, spanning ``variability`` across the cabinet.
    """
    if not 0.0 <= variability < 1.0:
        raise ConfigurationError(
            f"variability must be in [0, 1), got {variability}"
        )
    factors = []
    for node in range(width * height):
        row = node // width
        fraction = row / max(1, height - 1)
        factors.append((1.0 - variability) + variability * fraction)
    return factors


def paragon(
    nranks: int,
    placement: str = "snake",
    *,
    protocol: str = "pvm",
    cooling_variability: float = 0.0,
) -> Machine:
    """Intel-Paragon-like machine hosting ``nranks`` compute ranks.

    ``placement`` selects ``"snake"`` (Figure 4) or ``"naive"`` row-major.

    ``protocol`` selects the messaging layer's cost regime, because the
    report's two Paragon studies used different ones:

    * ``"pvm"`` — the wavelet study (Appendix A) was "developed in C and
      augmented with PVM communication calls": ~0.7 ms per-message latency
      and single-digit MB/s effective bandwidth.  Calibrated so the staged
      32-processor decomposition lands on Table 1's 0.61-0.66 s row.
    * ``"nx"`` — the N-body/PIC study (Appendix B) used the native NX
      library: ~0.12 ms latency and ~30 MB/s effective bandwidth.

    ``cooling_variability > 0`` enables the Section 5.4 physical effect:
    nodes near the cooling system (low mesh rows) run up to that fraction
    slower (see :func:`cooling_gradient_factors`).
    """
    if not 1 <= nranks <= PARAGON_MESH_WIDTH * PARAGON_MESH_HEIGHT:
        raise ConfigurationError(
            f"Paragon hosts 1..{PARAGON_MESH_WIDTH * PARAGON_MESH_HEIGHT} ranks, got {nranks}"
        )
    topo = Mesh2D(PARAGON_MESH_WIDTH, PARAGON_MESH_HEIGHT)
    if placement == "snake":
        nodes = snake_placement(nranks)
    elif placement == "naive":
        nodes = row_major_placement(nranks)
    else:
        raise ConfigurationError(f"unknown placement {placement!r}")
    if protocol == "pvm":
        network = ContentionNetwork(
            topology=topo,
            latency_s=700e-6,
            per_hop_s=10e-6,
            bytes_per_s=5e6,
            local_bytes_per_s=200e6,
        )
        sw_overhead = 150e-6
        copy_bw = 40e6
    elif protocol == "nx":
        network = ContentionNetwork(
            topology=topo,
            latency_s=120e-6,
            per_hop_s=2e-6,
            bytes_per_s=30e6,
            local_bytes_per_s=200e6,
        )
        sw_overhead = 50e-6
        copy_bw = 100e6
    else:
        raise ConfigurationError(f"unknown protocol {protocol!r}; use 'pvm' or 'nx'")
    speed_factors = (
        cooling_gradient_factors(variability=cooling_variability)
        if cooling_variability > 0
        else None
    )
    return Machine(
        name=f"paragon-{nranks}p-{placement}-{protocol}",
        cpu=paragon_cpu(),
        network=network,
        placement=nodes,
        sw_send_overhead_s=sw_overhead,
        sw_recv_overhead_s=sw_overhead,
        copy_bytes_per_s=copy_bw,
        speed_factors=speed_factors,
    )


def scaled_mesh(nranks: int, placement: str = "snake", *, torus: bool = False) -> Machine:
    """Paragon-like machine scaled past the 64-node JPL cabinet.

    A near-square 2-D mesh (power-of-two width) hosting up to thousands
    of ranks with the NX cost regime, for the engine scale-out studies:
    the paper's placement experiment (Section 5.1) re-run at 1k-4k ranks.
    The naive row-major placement still puts logical neighbors at row
    boundaries a full mesh row apart — and the rows are now ``width``
    nodes wide, so the conflict the snake placement removes grows with
    the machine.
    """
    if nranks < 1:
        raise ConfigurationError(f"nranks must be >= 1, got {nranks}")
    width = 1
    while width * width < nranks:
        width *= 2
    height = (nranks + width - 1) // width
    topo = Mesh2D(width, height, torus=torus)
    if placement == "snake":
        nodes = snake_placement(nranks, width)
    elif placement == "naive":
        nodes = row_major_placement(nranks, width)
    else:
        raise ConfigurationError(f"unknown placement {placement!r}")
    network = ContentionNetwork(
        topology=topo,
        latency_s=120e-6,
        per_hop_s=2e-6,
        bytes_per_s=30e6,
        local_bytes_per_s=200e6,
    )
    return Machine(
        name=f"bigmesh-{nranks}p-{placement}",
        cpu=paragon_cpu(),
        network=network,
        placement=nodes,
        sw_send_overhead_s=50e-6,
        sw_recv_overhead_s=50e-6,
        copy_bytes_per_s=100e6,
    )


def scaled_torus(nranks: int) -> Machine:
    """T3D-like machine scaled past 256 nodes: the smallest power-of-two
    cube torus hosting ``nranks`` ranks, with the T3D link/overhead
    parameters."""
    if nranks < 1:
        raise ConfigurationError(f"nranks must be >= 1, got {nranks}")
    side = 1
    while side * side * side < nranks:
        side *= 2
    topo = Torus3D(side, side, side)
    network = ContentionNetwork(
        topology=topo,
        latency_s=60e-6,
        per_hop_s=0.5e-6,
        bytes_per_s=120e6,
        local_bytes_per_s=400e6,
    )
    return Machine(
        name=f"bigtorus-{nranks}p",
        cpu=t3d_cpu(),
        network=network,
        placement=list(range(nranks)),
        sw_send_overhead_s=110e-6,
        sw_recv_overhead_s=110e-6,
        copy_bytes_per_s=120e6,
    )


def t3d(nranks: int) -> Machine:
    """Cray-T3D-like machine: 3-D torus, faster links, PVM-era software
    overheads (Appendix B notes PVM costs more per call than NX)."""
    if not 1 <= nranks <= 256:
        raise ConfigurationError(f"T3D hosts 1..256 ranks, got {nranks}")
    topo = Torus3D(8, 4, 8)
    network = ContentionNetwork(
        topology=topo,
        latency_s=60e-6,
        per_hop_s=0.5e-6,
        bytes_per_s=120e6,
        local_bytes_per_s=400e6,
    )
    return Machine(
        name=f"t3d-{nranks}p",
        cpu=t3d_cpu(),
        network=network,
        # Torus routing makes placement nearly immaterial; fill in order.
        placement=list(range(nranks)),
        sw_send_overhead_s=110e-6,  # PVM per-call cost > NX
        sw_recv_overhead_s=110e-6,
        copy_bytes_per_s=120e6,
    )


def workstation() -> Machine:
    """Single-node DEC-5000-like baseline."""
    network = ContentionNetwork(topology=FullyConnected(1))
    return Machine(
        name="dec5000",
        cpu=workstation_cpu(),
        network=network,
        placement=[0],
    )
