"""Central message-tag allocation registry.

Every point-to-point tag in the repository is allocated here, through one
:class:`TagRegistry`, instead of being hand-numbered in the module that
uses it.  The registry enforces, at import time, that no two allocations
share a value and that no allocation lands inside a reserved range (the
collectives block at 900k and the reliable-transport data/ack blocks at
950k/975k).  The static linter (:mod:`repro.analysis`) resolves the
symbolic names at ``ctx.send``/``ctx.recv`` call sites back to these
values and re-verifies the same invariant across modules, so a tag
collision is caught twice: once when the interpreter first imports this
module, and once per lint run over source that may not even be imported.

The concrete numbers are frozen: they predate the registry (they were
module-local ``_TAG_*`` constants) and the byte-exact trace/digest pins in
``tests/test_runtime_compat.py`` depend on them.  Allocate new tags in the
gaps (16-20, 22-30, 37+) below :data:`USER_TAG_CEILING`; never renumber an
existing one.

Layout
------

==============  =======================================================
1-11            2-D wavelet SPMD (striped/block), reconstruction, 1-D
                transform, N-body manager-worker update
12-15           single-loop sweep raw-tile guard exchanges (striped
                row guards, block column + extended-row guards)
21              PIC final particle collection
31-35           lifting/fused front- and back-guard exchanges (opposite
                direction to the conv guards)
36              adversarial spam-flood junk channel
                (:mod:`repro.scenarios.adversary`)
900_001-900_012 collectives (:mod:`repro.machines.api`)
950k/975k       reliable-transport data/ack blocks
                (:mod:`repro.machines.faults.transport`)
==============  =======================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "TagRange",
    "TagRegistry",
    "REGISTRY",
    "USER_TAG_CEILING",
    "verify_collision_free",
    "protocol_kind",
    "GuardRole",
    "GUARD_ROLES",
    # wavelet 2-D SPMD decomposition
    "WAVELET_DISTRIBUTE",
    "WAVELET_ROW_GUARD",
    "WAVELET_COL_GUARD",
    "WAVELET_COLLECT",
    "WAVELET_COL_GUARD_FRONT",
    "WAVELET_ROW_GUARD_FRONT",
    "WAVELET_SWEEP_GUARD",
    "WAVELET_SWEEP_GUARD_FRONT",
    "WAVELET_SWEEP_COL_GUARD",
    "WAVELET_SWEEP_COL_GUARD_FRONT",
    # wavelet 2-D SPMD reconstruction
    "RECONSTRUCT_DISTRIBUTE",
    "RECONSTRUCT_GUARD",
    "RECONSTRUCT_COLLECT",
    "RECONSTRUCT_GUARD_BACK",
    # wavelet 1-D SPMD transform
    "DWT1D_DISTRIBUTE",
    "DWT1D_GUARD",
    "DWT1D_COLLECT",
    "DWT1D_GUARD_FRONT",
    "DWT1D_GUARD_BACK",
    # applications
    "NBODY_UPDATE",
    "PIC_FINAL",
    # adversarial scenarios
    "ADVERSARY_SPAM",
    # engine rank-scaling benchmark
    "ENGINE_BENCH_TAG_BASE",
    # collectives
    "COLLECTIVE_TAG_BASE",
    "COLLECTIVE_BCAST",
    "COLLECTIVE_REDUCE",
    "COLLECTIVE_ALLREDUCE",
    "COLLECTIVE_GSSUM",
    "COLLECTIVE_GATHER",
    "COLLECTIVE_SCATTER",
    "COLLECTIVE_BARRIER",
    "COLLECTIVE_ALLGATHER",
    "COLLECTIVE_ALLTOALL",
    "COLLECTIVE_SENDRECV",
    "COLLECTIVE_RABENSEIFNER",
    "COLLECTIVE_BCAST_TREE",
    # reliable transport
    "TRANSPORT_DATA_BASE",
    "TRANSPORT_ACK_BASE",
    "TRANSPORT_TAG_SPAN",
]


@dataclass(frozen=True)
class TagRange:
    """A reserved half-open block ``[start, stop)`` of tag values.

    ``protocol`` classifies the matching discipline of the owning layer
    for the symbolic protocol verifier (:mod:`repro.analysis.protocol`):
    ``"app"`` tags are matched at program level; ``"collective"``,
    ``"paired"`` (ack'd transport) and ``"fan-in"`` traffic is matched by
    its own layer and exempt from program-level send/recv pairing.
    ``partner_shift`` records, for paired ranges, the constant offset to
    the partner block (data→ack and back) so the inversion is checkable.
    """

    name: str
    start: int
    stop: int
    protocol: str = "app"
    partner_shift: int | None = None

    def __contains__(self, value: object) -> bool:
        return isinstance(value, int) and self.start <= value < self.stop


class TagRegistry:
    """Collision-checked allocator for message-tag integers.

    ``allocate(name, value)`` records a single tag; ``reserve_range``
    records a block owned by one subsystem (collectives, transport).
    Both raise :class:`~repro.errors.ConfigurationError` on any overlap,
    so a bad allocation fails at import time, before a program can run
    with an ambiguous tag.
    """

    def __init__(self) -> None:
        self._by_name: dict[str, int] = {}
        self._by_value: dict[int, str] = {}
        self._ranges: list[TagRange] = []

    def allocate(self, name: str, value: int) -> int:
        """Register ``name -> value``; returns ``value`` for assignment."""
        if value < 0:
            raise ConfigurationError(f"tag {name!r} must be >= 0, got {value}")
        if name in self._by_name:
            raise ConfigurationError(f"tag name {name!r} already allocated")
        owner = self._by_value.get(value)
        if owner is not None:
            raise ConfigurationError(
                f"tag collision: {name!r} wants {value}, already owned by {owner!r}"
            )
        for block in self._ranges:
            if value in block:
                raise ConfigurationError(
                    f"tag collision: {name!r} wants {value}, inside reserved "
                    f"range {block.name!r} [{block.start}, {block.stop})"
                )
        self._by_name[name] = value
        self._by_value[value] = name
        return value

    def reserve_range(
        self,
        name: str,
        start: int,
        stop: int,
        *,
        protocol: str = "app",
        partner_shift: int | None = None,
    ) -> TagRange:
        """Reserve the block ``[start, stop)`` for one subsystem."""
        if not 0 <= start < stop:
            raise ConfigurationError(
                f"range {name!r} must satisfy 0 <= start < stop, got [{start}, {stop})"
            )
        for block in self._ranges:
            if start < block.stop and block.start < stop:
                raise ConfigurationError(
                    f"range collision: {name!r} [{start}, {stop}) overlaps "
                    f"{block.name!r} [{block.start}, {block.stop})"
                )
        for value, owner in self._by_value.items():
            if start <= value < stop:
                raise ConfigurationError(
                    f"range collision: {name!r} [{start}, {stop}) covers tag "
                    f"{value} owned by {owner!r}"
                )
        block = TagRange(name, start, stop, protocol, partner_shift)
        self._ranges.append(block)
        return block

    def name_of(self, value: int) -> str | None:
        """Symbolic name owning ``value`` (range names for range members)."""
        name = self._by_value.get(value)
        if name is not None:
            return name
        for block in self._ranges:
            if value in block:
                return block.name
        return None

    def value_of(self, name: str) -> int:
        """Value allocated to ``name`` (KeyError if unknown)."""
        return self._by_name[name]

    def all_tags(self) -> dict[str, int]:
        """Every individual allocation, sorted by value."""
        return dict(sorted(self._by_name.items(), key=lambda kv: kv[1]))

    def ranges(self) -> tuple[TagRange, ...]:
        """Every reserved range, in registration order."""
        return tuple(self._ranges)

    def verify(self) -> None:
        """Re-assert the collision-free invariant over the current state.

        ``allocate``/``reserve_range`` already enforce it incrementally;
        this is the belt-and-braces whole-table check the linter and the
        test suite call.
        """
        seen: dict[int, str] = {}
        for name, value in self._by_name.items():
            if value in seen:
                raise ConfigurationError(
                    f"tag collision: {name!r} and {seen[value]!r} share {value}"
                )
            seen[value] = name
            for block in self._ranges:
                if value in block:
                    raise ConfigurationError(
                        f"tag {name!r} ({value}) inside reserved range {block.name!r}"
                    )
        for i, a in enumerate(self._ranges):
            for b in self._ranges[i + 1 :]:
                if a.start < b.stop and b.start < a.stop:
                    raise ConfigurationError(
                        f"range collision: {a.name!r} overlaps {b.name!r}"
                    )
        # Paired ranges must invert: shifting a paired block by its
        # partner_shift must land exactly on another paired block whose
        # shift points back.
        for block in self._ranges:
            if block.partner_shift is None:
                continue
            partner = next(
                (
                    other
                    for other in self._ranges
                    if other.start == block.start + block.partner_shift
                    and other.stop == block.stop + block.partner_shift
                ),
                None,
            )
            if partner is None or partner.partner_shift != -block.partner_shift:
                raise ConfigurationError(
                    f"paired range {block.name!r} has no inverse partner at "
                    f"shift {block.partner_shift:+d}"
                )


#: The process-wide registry all repro tags are allocated from.
REGISTRY = TagRegistry()

#: User point-to-point tags must stay below this (collectives and the
#: reliable transport own everything above).
USER_TAG_CEILING = 900_000

# -- 2-D wavelet SPMD decomposition (repro.wavelet.parallel.spmd) ----------
WAVELET_DISTRIBUTE = REGISTRY.allocate("wavelet.spmd.distribute", 1)
WAVELET_ROW_GUARD = REGISTRY.allocate("wavelet.spmd.row_guard", 2)
WAVELET_COL_GUARD = REGISTRY.allocate("wavelet.spmd.col_guard", 3)
WAVELET_COLLECT = REGISTRY.allocate("wavelet.spmd.collect", 4)

# -- 2-D wavelet SPMD reconstruction (repro.wavelet.parallel.spmd_reconstruct)
RECONSTRUCT_DISTRIBUTE = REGISTRY.allocate("wavelet.reconstruct.distribute", 5)
RECONSTRUCT_GUARD = REGISTRY.allocate("wavelet.reconstruct.guard", 6)
RECONSTRUCT_COLLECT = REGISTRY.allocate("wavelet.reconstruct.collect", 7)

# -- 1-D wavelet SPMD transform (repro.wavelet.parallel.spmd_1d) -----------
DWT1D_DISTRIBUTE = REGISTRY.allocate("wavelet.dwt1d.distribute", 8)
DWT1D_GUARD = REGISTRY.allocate("wavelet.dwt1d.guard", 9)
DWT1D_COLLECT = REGISTRY.allocate("wavelet.dwt1d.collect", 10)

# -- single-loop sweep guard exchanges (repro.wavelet.parallel.spmd) -------
# The monolithic sweep exchanges guards of the *raw* tile before any
# arithmetic (there are no per-pass intermediates to exchange): row
# guards for the striped program, column guards plus guards of the
# horizontally-extended tile (so corner data flows through neighbors)
# for the block program.
WAVELET_SWEEP_GUARD = REGISTRY.allocate("wavelet.spmd.sweep_guard", 12)
WAVELET_SWEEP_GUARD_FRONT = REGISTRY.allocate("wavelet.spmd.sweep_guard_front", 13)
WAVELET_SWEEP_COL_GUARD = REGISTRY.allocate("wavelet.spmd.sweep_col_guard", 14)
WAVELET_SWEEP_COL_GUARD_FRONT = REGISTRY.allocate(
    "wavelet.spmd.sweep_col_guard_front", 15
)

# -- applications ----------------------------------------------------------
NBODY_UPDATE = REGISTRY.allocate("nbody.update", 11)
PIC_FINAL = REGISTRY.allocate("pic.final", 21)

# -- lifting/fused opposite-direction guard exchanges (31+ convention) -----
WAVELET_COL_GUARD_FRONT = REGISTRY.allocate("wavelet.spmd.col_guard_front", 31)
WAVELET_ROW_GUARD_FRONT = REGISTRY.allocate("wavelet.spmd.row_guard_front", 32)
DWT1D_GUARD_FRONT = REGISTRY.allocate("wavelet.dwt1d.guard_front", 33)
DWT1D_GUARD_BACK = REGISTRY.allocate("wavelet.dwt1d.guard_back", 34)
RECONSTRUCT_GUARD_BACK = REGISTRY.allocate("wavelet.reconstruct.guard_back", 35)

# -- adversarial scenarios (repro.scenarios.adversary) ---------------------
# Spam-flood junk lands on its own channel so a concrete-tag receive can
# never match it: the flood burns wire time and mailbox space only.
ADVERSARY_SPAM = REGISTRY.allocate("scenarios.adversary.spam", 36)

# -- collectives (repro.machines.api) --------------------------------------
COLLECTIVE_TAG_BASE = 900_000
_COLLECTIVES_RANGE = REGISTRY.reserve_range(
    "collectives", COLLECTIVE_TAG_BASE, COLLECTIVE_TAG_BASE + 50_000, protocol="collective"
)
COLLECTIVE_BCAST = COLLECTIVE_TAG_BASE + 1
COLLECTIVE_REDUCE = COLLECTIVE_TAG_BASE + 2
COLLECTIVE_ALLREDUCE = COLLECTIVE_TAG_BASE + 3
COLLECTIVE_GSSUM = COLLECTIVE_TAG_BASE + 4
COLLECTIVE_GATHER = COLLECTIVE_TAG_BASE + 5
COLLECTIVE_SCATTER = COLLECTIVE_TAG_BASE + 6
COLLECTIVE_BARRIER = COLLECTIVE_TAG_BASE + 7
COLLECTIVE_ALLGATHER = COLLECTIVE_TAG_BASE + 8
COLLECTIVE_ALLTOALL = COLLECTIVE_TAG_BASE + 9
COLLECTIVE_SENDRECV = COLLECTIVE_TAG_BASE + 10
COLLECTIVE_RABENSEIFNER = COLLECTIVE_TAG_BASE + 11
COLLECTIVE_BCAST_TREE = COLLECTIVE_TAG_BASE + 12

# -- engine rank-scaling benchmark (repro.perf.engine_bench) ---------------
# The collect-stage workload ships one message per sub-band under its own
# tag; reserving the small range keeps those tags collision-checked against
# every program tag and the collective/transport bands.
ENGINE_BENCH_TAG_BASE = 880_000
_ENGINE_BENCH_RANGE = REGISTRY.reserve_range(
    "bench.engine.collect", ENGINE_BENCH_TAG_BASE, ENGINE_BENCH_TAG_BASE + 16, protocol="fan-in"
)

# -- reliable transport (repro.machines.faults.transport) ------------------
TRANSPORT_TAG_SPAN = 25_000
TRANSPORT_DATA_BASE = 950_000
TRANSPORT_ACK_BASE = 975_000
_TRANSPORT_DATA_RANGE = REGISTRY.reserve_range(
    "faults.transport.data",
    TRANSPORT_DATA_BASE,
    TRANSPORT_DATA_BASE + TRANSPORT_TAG_SPAN,
    protocol="paired",
    partner_shift=TRANSPORT_ACK_BASE - TRANSPORT_DATA_BASE,
)
_TRANSPORT_ACK_RANGE = REGISTRY.reserve_range(
    "faults.transport.ack",
    TRANSPORT_ACK_BASE,
    TRANSPORT_ACK_BASE + TRANSPORT_TAG_SPAN,
    protocol="paired",
    partner_shift=TRANSPORT_DATA_BASE - TRANSPORT_ACK_BASE,
)


def protocol_kind(value: int) -> str:
    """Matching discipline owning a tag value: ``"app"`` for program-level
    tags, else the reserved range's protocol classification."""
    for block in REGISTRY.ranges():
        if value in block:
            return block.protocol
    return "app"


@dataclass(frozen=True)
class GuardRole:
    """Which side of a wavelet guard exchange a tag carries, per phase.

    The protocol verifier compares the payload row/sample count of a send
    on one of these tags against the kernel plan's
    ``analysis_guard_depths`` / ``synthesis_guard_depths``.  ``None``
    means the tag plays no role in that phase.
    """

    analysis: str | None = None  # "front" | "back"
    synthesis: str | None = None


#: Guard-exchange role of every wavelet guard tag.  Back guards flow to
#: the preceding rank (conv consumes rows *after* the tile); front guards
#: flow to the following rank (lifting/synthesis margins).  DWT1D_GUARD
#: is phase-overloaded: the forward transform ships the back guard on it,
#: the inverse ships the front guard.
GUARD_ROLES: dict[int, GuardRole] = {
    WAVELET_ROW_GUARD: GuardRole(analysis="back"),
    WAVELET_COL_GUARD: GuardRole(analysis="back"),
    WAVELET_SWEEP_GUARD: GuardRole(analysis="back"),
    WAVELET_SWEEP_GUARD_FRONT: GuardRole(analysis="front"),
    WAVELET_SWEEP_COL_GUARD: GuardRole(analysis="back"),
    WAVELET_SWEEP_COL_GUARD_FRONT: GuardRole(analysis="front"),
    WAVELET_COL_GUARD_FRONT: GuardRole(analysis="front"),
    WAVELET_ROW_GUARD_FRONT: GuardRole(analysis="front"),
    DWT1D_GUARD: GuardRole(analysis="back", synthesis="front"),
    DWT1D_GUARD_FRONT: GuardRole(analysis="front"),
    DWT1D_GUARD_BACK: GuardRole(synthesis="back"),
    RECONSTRUCT_GUARD: GuardRole(synthesis="front"),
    RECONSTRUCT_GUARD_BACK: GuardRole(synthesis="back"),
}


def verify_collision_free() -> None:
    """Assert the whole registry is collision-free (linter/test hook)."""
    REGISTRY.verify()
    for name, value in REGISTRY.all_tags().items():
        if value >= USER_TAG_CEILING:
            raise ConfigurationError(
                f"user tag {name!r} ({value}) at or above the "
                f"collective/transport ceiling {USER_TAG_CEILING}"
            )


# Import-time assertion: a collision anywhere above raises before any
# program can run with an ambiguous tag.
verify_collision_free()
