"""Space-sharing partition management.

The T3D description in Appendix B: "The system is space-shared into
partitions where the numbers of processors are powers of two."  This
module implements that allocator over any topology: power-of-two
partitions carved from the node list, buddy-style, with allocation,
release, and occupancy accounting.  The wavelet/N-body/PIC drivers can
then run on a partition's nodes exactly as 1995 job schedulers placed
them — including the unlucky partitions next to the cooling system
(Section 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.machines.network import Topology

__all__ = ["Partition", "PartitionManager"]


@dataclass(frozen=True)
class Partition:
    """An allocated block of nodes."""

    ticket: int
    nodes: tuple

    @property
    def size(self) -> int:
        """Number of nodes in the partition."""
        return len(self.nodes)


class PartitionManager:
    """Buddy allocator of power-of-two node blocks over a topology.

    Nodes are managed as the contiguous index range ``[0, num_nodes)``
    rounded down to a power of two (the remainder stays service-node
    territory, like the Paragon's 8 service nodes).
    """

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        usable = 1
        while usable * 2 <= topology.num_nodes:
            usable *= 2
        self.usable_nodes = usable
        # free_blocks[k] = sorted list of start offsets of free 2^k blocks.
        self._free: dict = {}
        level = usable.bit_length() - 1
        self._free = {k: [] for k in range(level + 1)}
        self._free[level].append(0)
        self._allocated: dict = {}
        self._next_ticket = 1

    @staticmethod
    def _level_for(size: int) -> int:
        if size < 1 or size & (size - 1):
            raise ConfigurationError(
                f"partition sizes must be powers of two, got {size}"
            )
        return size.bit_length() - 1

    def allocate(self, size: int) -> Partition:
        """Allocate a partition of ``size`` nodes (power of two).

        Raises
        ------
        ConfigurationError
            If the request exceeds the machine or nothing is free.
        """
        level = self._level_for(size)
        if size > self.usable_nodes:
            raise ConfigurationError(
                f"requested {size} nodes; machine offers {self.usable_nodes}"
            )
        # Find the smallest free block able to host the request.
        source = None
        for candidate in range(level, self.usable_nodes.bit_length()):
            if self._free.get(candidate):
                source = candidate
                break
        if source is None:
            raise ConfigurationError(
                f"no free partition of {size} nodes (machine is fragmented or full)"
            )
        start = self._free[source].pop(0)
        # Split buddies down to the requested level.
        while source > level:
            source -= 1
            buddy = start + (1 << source)
            self._free[source].append(buddy)
            self._free[source].sort()
        ticket = self._next_ticket
        self._next_ticket += 1
        partition = Partition(ticket=ticket, nodes=tuple(range(start, start + size)))
        self._allocated[ticket] = (start, level)
        return partition

    def release(self, partition: Partition) -> None:
        """Return a partition, coalescing free buddies."""
        entry = self._allocated.pop(partition.ticket, None)
        if entry is None:
            raise ConfigurationError(
                f"partition ticket {partition.ticket} is not allocated"
            )
        start, level = entry
        top_level = self.usable_nodes.bit_length() - 1
        while level < top_level:
            buddy = start ^ (1 << level)
            if buddy in self._free[level]:
                self._free[level].remove(buddy)
                start = min(start, buddy)
                level += 1
            else:
                break
        self._free[level].append(start)
        self._free[level].sort()

    @property
    def free_nodes(self) -> int:
        """Total unallocated nodes."""
        return sum(len(starts) << level for level, starts in self._free.items())

    @property
    def allocated_partitions(self) -> int:
        """Number of live allocations."""
        return len(self._allocated)

    def largest_free_block(self) -> int:
        """Size of the biggest allocatable partition right now."""
        for level in sorted(self._free, reverse=True):
            if self._free[level]:
                return 1 << level
        return 0
