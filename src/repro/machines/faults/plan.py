"""Seeded, virtual-time fault plans for the SPMD engine.

A :class:`FaultPlan` is a *pure function* of ``(seed, config)``: every
decision — does message #17's second transmission attempt get dropped?
is rank 3 a straggler at t=0.4s? — is derived by hashing the decision's
identity together with the seed (a splitmix64-style integer mix, no RNG
stream and no wall-clock randomness).  Two consequences matter:

* **Replay determinism.**  Re-running the same program with the same plan
  reproduces byte-identical schedules, traces, and budgets, which is what
  makes a fault *test suite* (rather than a flaky chaos harness) possible.
* **Order independence.**  Decisions do not consume a shared stream, so
  querying them in a different order (e.g. with tracing on vs off) cannot
  perturb the outcome.

The plan models the failure classes the paper's Paragon/T3D campaign ran
into on real hardware:

* message **drop**, **duplicate**, **corruption**, and transient **delay**
  (per transmission attempt, so retransmissions re-roll their fate),
* per-link transient **slowdowns** (a degraded channel between two nodes
  over a virtual-time window),
* per-rank **stragglers** (compute slowdown over a window — the cooling
  -gradient effect of Section 5.4 taken to pathological extremes),
* rank **crash at virtual time** (fail-stop; see
  :mod:`repro.machines.faults.recovery` for the checkpoint/restart side).

Self-sends (``dst == src``) are local memory copies and are never faulted.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.machines.engine import CorruptedPayload  # noqa: F401  (re-export)

__all__ = [
    "FaultConfig",
    "FaultPlan",
    "MessageFate",
    "CorruptedPayload",
]

_MASK = (1 << 64) - 1


def _mix64(x: int) -> int:
    """splitmix64 finalizer: a high-quality 64-bit bijective mix."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
    return (x ^ (x >> 31)) & _MASK


def _hash01(seed: int, *parts: int) -> float:
    """Deterministic uniform draw in [0, 1) keyed by ``(seed, *parts)``."""
    h = _mix64(seed & _MASK)
    for part in parts:
        h = _mix64(h ^ (part & _MASK))
    return h / float(1 << 64)


# Domain separators so that e.g. the drop draw for message 5 never shares
# a hash input with the crash draw for rank 5.
_D_DROP, _D_DUP, _D_CORRUPT, _D_DELAY, _D_DELAY_AMOUNT = 1, 2, 3, 4, 5
_D_CRASH, _D_CRASH_TIME, _D_STRAGGLER, _D_STRAGGLER_AMT, _D_LINK = 6, 7, 8, 9, 10


@dataclass(frozen=True)
class MessageFate:
    """Outcome of one transmission attempt of one message."""

    delivered: bool = True
    corrupt: bool = False
    duplicate: bool = False
    extra_delay_s: float = 0.0


@dataclass(frozen=True)
class FaultConfig:
    """Static description of a fault scenario (rates, windows, crashes).

    Rates are per *transmission attempt* probabilities in [0, 1].
    ``crashes`` maps rank -> virtual crash time; ``stragglers`` and
    ``link_slowdowns`` are windows ``(t0, t1)`` with a slowdown factor
    >= 1 applied inside the window.

    ``reliable=True`` (the default) makes the engine model a reliable
    transport underneath every send: lost or corrupted attempts are
    detected (ack timeout / checksum) and retransmitted with exponential
    backoff, all charged in virtual time, so programs always receive
    intact data — only *when* changes.  ``reliable=False`` exposes the
    raw lossy channel (drops vanish, duplicates arrive twice, corruption
    replaces the payload with :class:`CorruptedPayload`) for programs
    that implement their own protocol, e.g.
    :func:`repro.machines.faults.transport.reliable_send`.
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    corrupt_rate: float = 0.0
    delay_rate: float = 0.0
    max_delay_s: float = 0.0
    crashes: tuple = ()  # ((rank, t_crash_s), ...)
    stragglers: tuple = ()  # ((rank, factor, t0, t1), ...)
    link_slowdowns: tuple = ()  # ((node_a, node_b, factor, t0, t1), ...)
    reliable: bool = True
    rto_s: float = 200e-6
    backoff: float = 2.0
    max_retries: int = 12

    def __post_init__(self) -> None:
        for name in ("drop_rate", "duplicate_rate", "corrupt_rate", "delay_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {rate}")
        if self.max_delay_s < 0.0:
            raise ConfigurationError("max_delay_s must be >= 0")
        if self.rto_s <= 0.0 or self.backoff < 1.0 or self.max_retries < 1:
            raise ConfigurationError("need rto_s > 0, backoff >= 1, max_retries >= 1")
        for rank, t in self.crashes:
            if t < 0.0:
                raise ConfigurationError(f"crash time for rank {rank} must be >= 0")
        for rank, factor, t0, t1 in self.stragglers:
            if factor < 1.0 or t1 < t0:
                raise ConfigurationError(
                    f"straggler ({rank}, {factor}, {t0}, {t1}) needs factor >= 1, t1 >= t0"
                )
        for a, b, factor, t0, t1 in self.link_slowdowns:
            if factor < 1.0 or t1 < t0:
                raise ConfigurationError(
                    f"link slowdown ({a}, {b}, {factor}, {t0}, {t1}) needs factor >= 1, t1 >= t0"
                )


class FaultPlan:
    """Deterministic fault oracle: ``(seed, config)`` -> every decision.

    The engine consults the plan at each transmission attempt
    (:meth:`message_fate`), each compute interval (:meth:`straggler_factor`),
    each network transfer (:meth:`link_factor`), and each scheduling step
    (:meth:`crash_time`).
    """

    def __init__(self, seed: int, config: FaultConfig | None = None) -> None:
        self.seed = int(seed)
        self.config = config if config is not None else FaultConfig()
        self._crash_times = dict(self.config.crashes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(seed={self.seed}, config={self.config})"

    # -- message fates ------------------------------------------------------

    def message_fate(self, msg_index: int, attempt: int = 0) -> MessageFate:
        """Fate of transmission ``attempt`` of the ``msg_index``-th send.

        ``msg_index`` is the engine's monotone per-run send counter; the
        deterministic scheduler makes the counter itself reproducible, so
        the (index, attempt) pair uniquely names a transmission.
        """
        cfg = self.config
        dropped = _hash01(self.seed, _D_DROP, msg_index, attempt) < cfg.drop_rate
        corrupt = (
            not dropped
            and _hash01(self.seed, _D_CORRUPT, msg_index, attempt) < cfg.corrupt_rate
        )
        duplicate = (
            not dropped
            and _hash01(self.seed, _D_DUP, msg_index, attempt) < cfg.duplicate_rate
        )
        delay = 0.0
        if cfg.max_delay_s > 0.0 and (
            _hash01(self.seed, _D_DELAY, msg_index, attempt) < cfg.delay_rate
        ):
            delay = cfg.max_delay_s * _hash01(
                self.seed, _D_DELAY_AMOUNT, msg_index, attempt
            )
        return MessageFate(
            delivered=not dropped,
            corrupt=corrupt,
            duplicate=duplicate,
            extra_delay_s=delay,
        )

    # -- rank crashes -------------------------------------------------------

    def crash_time(self, rank: int) -> float | None:
        """Virtual crash instant for ``rank``, or ``None`` if it survives."""
        return self._crash_times.get(rank)

    @property
    def crash_schedule(self) -> dict:
        """Copy of the rank -> crash-time map."""
        return dict(self._crash_times)

    def without_crash(self, rank: int) -> "FaultPlan":
        """A plan with ``rank``'s crash removed (the node was repaired or
        replaced): what a recovery driver runs the restarted attempt
        under."""
        crashes = tuple((r, t) for r, t in self.config.crashes if r != rank)
        return FaultPlan(self.seed, replace(self.config, crashes=crashes))

    # -- slowdowns ----------------------------------------------------------

    def straggler_factor(self, rank: int, t: float) -> float:
        """Compute-slowdown factor (>= 1) for ``rank`` at virtual ``t``."""
        factor = 1.0
        for r, f, t0, t1 in self.config.stragglers:
            if r == rank and t0 <= t < t1:
                factor *= f
        return factor

    def link_factor(self, node_a: int, node_b: int, t: float) -> float:
        """Transfer-duration factor (>= 1) for the ``(node_a, node_b)``
        endpoint pair at virtual ``t`` (undirected)."""
        factor = 1.0
        lo, hi = (node_a, node_b) if node_a <= node_b else (node_b, node_a)
        for a, b, f, t0, t1 in self.config.link_slowdowns:
            ca, cb = (a, b) if a <= b else (b, a)
            if (ca, cb) == (lo, hi) and t0 <= t < t1:
                factor *= f
        return factor

    @property
    def has_link_slowdowns(self) -> bool:
        """Whether the plan degrades any link (skip the hook otherwise)."""
        return bool(self.config.link_slowdowns)

    # -- scenario generation ------------------------------------------------

    @classmethod
    def sampled(
        cls,
        seed: int,
        nranks: int,
        fault_rate: float,
        *,
        t_horizon: float = 0.0,
        crash_prob: float | None = None,
        max_crashes: int | None = None,
        reliable: bool = True,
        rto_s: float = 200e-6,
    ) -> "FaultPlan":
        """Sample a whole scenario from ``(seed, nranks, fault_rate)``.

        Message-fault rates scale linearly with ``fault_rate``; each rank
        independently crashes with probability ``crash_prob`` (default
        ``min(0.4, fault_rate)``) at a hash-drawn instant inside
        ``(0.15, 0.85) * t_horizon``; one rank in four at ``fault_rate``
        odds straggles by up to 3x.  ``t_horizon`` (typically the
        fault-free elapsed time) gates crashes and slowdown windows —
        with ``t_horizon=0`` no crash or window faults are generated.

        This is the fuzzing entry point: the sweep over
        ``(seed, fault_rate)`` pairs in ``tests/test_fault_fuzz.py`` and
        ``python -m repro faults`` both build their scenarios here.
        """
        if not 0.0 <= fault_rate <= 1.0:
            raise ConfigurationError(f"fault_rate must be in [0, 1], got {fault_rate}")
        if crash_prob is None:
            crash_prob = min(0.4, fault_rate)
        crashes = []
        stragglers = []
        if t_horizon > 0.0:
            for rank in range(nranks):
                if _hash01(seed, _D_CRASH, rank) < crash_prob:
                    frac = 0.15 + 0.7 * _hash01(seed, _D_CRASH_TIME, rank)
                    crashes.append((rank, frac * t_horizon))
                if _hash01(seed, _D_STRAGGLER, rank) < fault_rate * 0.25:
                    factor = 1.0 + 2.0 * _hash01(seed, _D_STRAGGLER_AMT, rank)
                    t0 = 0.1 * t_horizon
                    stragglers.append((rank, factor, t0, t0 + 0.5 * t_horizon))
            if max_crashes is not None:
                crashes = crashes[:max_crashes]
        config = FaultConfig(
            drop_rate=0.5 * fault_rate,
            duplicate_rate=0.2 * fault_rate,
            corrupt_rate=0.15 * fault_rate,
            delay_rate=0.5 * fault_rate,
            max_delay_s=2e-3 * (1.0 + 4.0 * fault_rate),
            crashes=tuple(crashes),
            stragglers=tuple(stragglers),
            reliable=reliable,
            rto_s=rto_s,
        )
        return cls(seed, config)
