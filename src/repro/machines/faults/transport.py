"""Reliable point-to-point transport built *inside* rank programs.

The engine's default fault handling (``FaultConfig(reliable=True)``)
models a transport layer underneath every send.  This module is the
explicit, program-visible counterpart for the raw lossy channel
(``reliable=False``): stop-and-wait ack + retransmit with exponential
backoff, sequence-number deduplication, and checksum verification, all
expressed as ordinary generator subroutines::

    yield from reliable_send(ctx, dst, payload, tag=3)
    payload = yield from reliable_recv(ctx, src, tag=3)

Every retransmission, ack, and timed-out wait is charged in virtual time
through the normal engine ops, so the protocol's cost is measurable (and
its messages show up as flow arrows in the causality trace).

Tag space: a user tag ``t`` maps to data tag ``DATA_TAG_BASE + t`` and
ack tag ``ACK_TAG_BASE + t``; user point-to-point tags must stay below
``TRANSPORT_TAG_SPAN`` to avoid collisions (collectives already live in
their own band).
"""

from __future__ import annotations

import pickle
import zlib

from repro.errors import CommunicationError, RecvTimeoutError, TransportError
from repro.machines import tags
from repro.machines.engine import ANY_SOURCE, CorruptedPayload, RankContext

__all__ = [
    "DATA_TAG_BASE",
    "ACK_TAG_BASE",
    "TRANSPORT_TAG_SPAN",
    "reliable_send",
    "reliable_recv",
    "drain",
]

DATA_TAG_BASE = tags.TRANSPORT_DATA_BASE
ACK_TAG_BASE = tags.TRANSPORT_ACK_BASE
TRANSPORT_TAG_SPAN = tags.TRANSPORT_TAG_SPAN


def _checksum(payload) -> int:
    """CRC32 over a stable serialization of the payload."""
    return zlib.crc32(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))


class _TransportState:
    """Per-rank connection state: send/recv sequence counters per
    ``(peer, tag)`` channel."""

    __slots__ = ("send_seq", "recv_seq")

    def __init__(self) -> None:
        self.send_seq: dict = {}
        self.recv_seq: dict = {}


def _state(ctx: RankContext) -> _TransportState:
    state = getattr(ctx, "_transport_state", None)
    if state is None:
        state = _TransportState()
        ctx._transport_state = state
    return state


def _check_tag(tag: int) -> None:
    if not 0 <= tag < TRANSPORT_TAG_SPAN:
        raise CommunicationError(
            f"reliable transport tag must be in [0, {TRANSPORT_TAG_SPAN}), got {tag}"
        )


def reliable_send(
    ctx: RankContext,
    dst: int,
    payload,
    *,
    tag: int = 0,
    rto_s: float = 1e-3,
    backoff: float = 2.0,
    rto_max_s: float = 50e-3,
    max_retries: int = 30,
):
    """Send ``payload`` to ``dst`` over the lossy channel, guaranteed.

    Stop-and-wait: transmit a ``(seq, checksum, payload)`` envelope, then
    block for the matching ack with a timeout of ``rto_s * backoff**k``
    (capped at ``rto_max_s``) on the ``k``-th attempt; on timeout,
    retransmit.  Raises :class:`~repro.errors.TransportError` once
    ``max_retries`` retransmissions go unacknowledged.

    Note a round only succeeds when the data *and* its ack both survive,
    so the per-round success probability compounds both directions — the
    generous default retry budget is what keeps the exhaustion
    probability negligible even at extreme loss rates (it costs only
    virtual time).
    """
    _check_tag(tag)
    state = _state(ctx)
    key = (dst, tag)
    seq = state.send_seq.get(key, 0)
    envelope = (seq, _checksum(payload), payload)
    for attempt in range(max_retries + 1):
        yield ctx.send(dst, envelope, tag=DATA_TAG_BASE + tag)
        timeout = min(rto_s * backoff**attempt, rto_max_s)
        while True:
            try:
                ack = yield ctx.recv(dst, tag=ACK_TAG_BASE + tag, timeout_s=timeout)
            except RecvTimeoutError:
                break  # ack never came in time: retransmit
            if not isinstance(ack, CorruptedPayload) and ack == seq:
                state.send_seq[key] = seq + 1
                return None
            # A stale duplicate ack (or a mangled one): keep draining the
            # ack channel inside this attempt's window.
    raise TransportError(
        f"rank {ctx.rank} -> {dst} (tag {tag}, seq {seq}): "
        f"{max_retries} retransmissions went unacknowledged"
    )


def reliable_recv(
    ctx: RankContext,
    src: int,
    *,
    tag: int = 0,
    timeout_s: float | None = None,
):
    """Receive the next in-sequence payload from ``src``, discarding
    duplicates and damaged envelopes (which go un-acked so the sender
    retransmits).

    ``timeout_s`` bounds each *individual* wait for a data envelope; a
    :class:`~repro.errors.RecvTimeoutError` from an exhausted wait
    propagates to the caller.  ``src`` must be a concrete rank — the
    sequence-number channel is per peer, so wildcard receives cannot be
    made reliable.
    """
    _check_tag(tag)
    if src == ANY_SOURCE:
        raise CommunicationError("reliable_recv requires a concrete source rank")
    state = _state(ctx)
    key = (src, tag)
    expect = state.recv_seq.get(key, 0)
    while True:
        envelope = yield ctx.recv(src, tag=DATA_TAG_BASE + tag, timeout_s=timeout_s)
        if isinstance(envelope, CorruptedPayload):
            continue  # mangled on the wire: no ack, sender retransmits
        seq, checksum, payload = envelope
        if isinstance(payload, CorruptedPayload) or _checksum(payload) != checksum:
            continue  # damaged payload: no ack, sender retransmits
        # Ack even duplicates — the previous ack may have been the loss.
        yield ctx.send(src, seq, tag=ACK_TAG_BASE + tag)
        if seq == expect:
            state.recv_seq[key] = expect + 1
            return payload
        # seq < expect: a retransmission of something already delivered.


def drain(
    ctx: RankContext,
    src: int,
    *,
    tag: int = 0,
    quiet_s: float = 1.0,
):
    """Keep servicing a channel after its last :func:`reliable_recv`.

    Stop-and-wait has a "last ack" hole (the two-generals problem): if the
    ack for the final message is lost, the sender retransmits — but the
    receiver has already moved on, so nothing re-acks and the sender
    eventually raises :class:`~repro.errors.TransportError`.  While a
    message *stream* is live, :func:`reliable_recv` itself re-acks
    retransmissions of earlier messages; ``drain`` covers the tail:
    re-ack every already-delivered envelope until the channel has been
    quiet for ``quiet_s``.

    ``quiet_s`` must cover a long *run of consecutive losses* at the
    sender's backoff cap (consecutive drops deliver nothing, so nothing
    re-arms the window): at ``rto_max_s = 50e-3`` the default tolerates
    ~20 straight losses.  It is pure virtual time — generous is free.
    """
    _check_tag(tag)
    if src == ANY_SOURCE:
        raise CommunicationError("drain requires a concrete source rank")
    state = _state(ctx)
    key = (src, tag)
    expect = state.recv_seq.get(key, 0)
    while True:
        try:
            envelope = yield ctx.recv(src, tag=DATA_TAG_BASE + tag, timeout_s=quiet_s)
        except RecvTimeoutError:
            return None
        if isinstance(envelope, CorruptedPayload):
            continue  # mangled retransmission: the next copy carries the seq
        seq = envelope[0]
        if seq < expect:
            yield ctx.send(src, seq, tag=ACK_TAG_BASE + tag)
