"""Checkpoint/restart recovery driver for crash-fault runs.

The engine models crashes fail-stop: when a rank hits its plan's crash
time the whole run aborts with :class:`~repro.errors.RankCrashError`,
carrying the newest *globally committed* checkpoint (the largest index
that every rank had written via ``yield ctx.checkpoint(state)`` before
the crash — the classic coordinated-checkpoint commit rule).

:func:`run_with_recovery` wraps ``Engine.run`` in the restart loop an
operator (or batch scheduler) would run: on a crash it "repairs" the
failed node (drops that rank's crash from the plan — every other injected
fault stays live), rewinds to the committed checkpoint, and re-runs the
program with ``restore=<per-rank states>``.  Virtual time lost to the
aborted attempt is accounted in the outcome so fault sweeps can report
the true cost of a failure, not just the final run's elapsed time.

Programs opt in by accepting a ``restore`` keyword (a per-rank list of
the states they checkpointed) and fast-forwarding from it; programs that
never checkpoint still work — they are simply restarted from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.machines.engine import RunResult
from repro.machines.faults.plan import FaultPlan

__all__ = ["RecoveryOutcome", "run_with_recovery", "payload_equal"]


def payload_equal(a, b) -> bool:
    """Deep *bitwise* equality over the nested containers rank programs
    return (arrays compare exact — recovery must reproduce the fault-free
    result to the last bit, so no tolerance is allowed)."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (
            isinstance(a, np.ndarray)
            and isinstance(b, np.ndarray)
            and a.shape == b.shape
            and a.dtype == b.dtype
            and bool(np.array_equal(a, b))
        )
    if isinstance(a, dict) and isinstance(b, dict):
        return set(a) == set(b) and all(payload_equal(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(payload_equal(x, y) for x, y in zip(a, b))
    return bool(a == b)


@dataclass
class RecoveryOutcome:
    """What a recovered (or crash-free) run of a program looked like."""

    #: Result of the final, successful attempt.
    run: RunResult
    #: One :class:`RankCrashError` per aborted attempt, in order.
    crashes: list = field(default_factory=list)
    #: Total ``Engine.run`` invocations (``len(crashes) + 1``).
    attempts: int = 1
    #: Virtual time across *all* attempts: time lost to aborted runs plus
    #: the final attempt's elapsed time.
    total_virtual_s: float = 0.0
    #: The plan the final attempt ran under (crashed ranks repaired).
    plan: FaultPlan | None = None

    @property
    def restarts(self) -> int:
        """Number of checkpoint/restart cycles (0 for a clean run)."""
        return len(self.crashes)


def run_with_recovery(
    machine,
    program,
    *args,
    faults: FaultPlan | None = None,
    max_restarts: int = 8,
    record_trace: bool = False,
    restore_kwarg: str = "restore",
    **kwargs,
) -> RecoveryOutcome:
    """Run ``program`` to completion through injected crashes.

    Each attempt runs under the current plan; a
    :class:`~repro.errors.RankCrashError` repairs the crashed rank
    (``plan.without_crash``), adopts the crash's committed checkpoint (if
    any) as the next attempt's ``restore``, and retries.  A crash with no
    newer committed checkpoint keeps the previous restore point, so
    back-to-back crashes never regress the recovery line.  Raises the
    final :class:`RankCrashError` if ``max_restarts`` is exhausted.

    Extra positional/keyword arguments are forwarded to ``program``
    through ``Engine.run``; the restore states are injected under
    ``restore_kwarg`` only once a committed checkpoint exists, so
    programs without checkpoint support can still be driven (they
    restart from the beginning).

    Thin wrapper: the restart loop itself lives in
    :func:`repro.runtime.run_program`, which the scheduler and every
    driver share; this function repackages its
    :class:`~repro.runtime.exec.Execution` as a :class:`RecoveryOutcome`.
    """
    from repro.runtime.exec import run_program

    execution = run_program(
        machine,
        program,
        *args,
        faults=faults,
        max_restarts=max_restarts,
        record_trace=record_trace,
        restore_kwarg=restore_kwarg,
        **kwargs,
    )
    return RecoveryOutcome(
        run=execution.run,
        crashes=execution.crashes,
        attempts=execution.attempts,
        total_virtual_s=execution.total_virtual_s,
        plan=execution.plan,
    )
