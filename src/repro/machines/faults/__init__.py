"""Deterministic fault injection and recovery for the SPMD engine.

Three layers, from description to survival:

* :mod:`~repro.machines.faults.plan` — :class:`FaultPlan`, a seeded pure
  -function oracle deciding every fault (message drop/duplicate/corrupt/
  delay, link slowdowns, stragglers, crash times) with no RNG stream, so
  runs replay byte-identically.
* :mod:`~repro.machines.faults.transport` — explicit stop-and-wait
  ack/retransmit subroutines (:func:`reliable_send` /
  :func:`reliable_recv`) for programs running over the raw lossy channel
  (``FaultConfig(reliable=False)``).
* :mod:`~repro.machines.faults.recovery` — :func:`run_with_recovery`,
  the checkpoint/restart driver that carries a program through injected
  fail-stop crashes.
"""

from repro.machines.faults.plan import (
    CorruptedPayload,
    FaultConfig,
    FaultPlan,
    MessageFate,
)
from repro.machines.faults.recovery import (
    RecoveryOutcome,
    payload_equal,
    run_with_recovery,
)
from repro.machines.faults.transport import (
    ACK_TAG_BASE,
    DATA_TAG_BASE,
    TRANSPORT_TAG_SPAN,
    drain,
    reliable_recv,
    reliable_send,
)

__all__ = [
    "FaultPlan",
    "FaultConfig",
    "MessageFate",
    "CorruptedPayload",
    "reliable_send",
    "reliable_recv",
    "drain",
    "DATA_TAG_BASE",
    "ACK_TAG_BASE",
    "TRANSPORT_TAG_SPAN",
    "run_with_recovery",
    "RecoveryOutcome",
    "payload_equal",
]
