"""Chrome/Perfetto trace-event JSON export of an engine trace.

Produces the `Trace Event Format`_ consumed by ``chrome://tracing``,
Perfetto, and Speedscope: one timeline row per rank (complete ``"X"``
events for compute/redundancy/send/recv intervals) plus flow arrows
(``"s"``/``"f"`` pairs keyed by the engine's monotone message ids)
drawing every matched send -> recv message across rows.  Virtual seconds
are exported as microseconds, the format's native unit.

.. _Trace Event Format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json

from repro.errors import CausalityError

__all__ = ["chrome_trace", "write_chrome_trace"]

_PID = 0


def _events_of(run_or_trace):
    trace = getattr(run_or_trace, "trace", run_or_trace)
    if trace is None:
        raise CausalityError(
            "run has no trace; construct the Engine with record_trace=True"
        )
    return list(trace)


def chrome_trace(run_or_trace, *, machine_name: str = "repro") -> dict:
    """Build the trace-event dictionary for a traced run.

    Accepts a :class:`~repro.machines.engine.RunResult` or a raw event
    list; returns a JSON-serializable dict with a ``traceEvents`` array.
    """
    events = _events_of(run_or_trace)
    out = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "args": {"name": machine_name},
        }
    ]
    for rank in sorted({e.rank for e in events}):
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": rank,
                "args": {"name": f"rank {rank}"},
            }
        )
    for event in events:
        ts = event.start_s * 1e6
        dur = max((event.end_s - event.start_s) * 1e6, 1e-3)
        args = {"lamport": event.lamport}
        if event.kind in ("send", "recv"):
            args["peer"] = event.peer
            args["nbytes"] = event.nbytes
            args["tag"] = event.tag
        if event.kind == "send" and event.msg_id >= 0:
            args["msg_id"] = event.msg_id
        if event.kind == "recv" and event.match_id >= 0:
            args["match_id"] = event.match_id
            args["blocked_us"] = max(0.0, (event.arrive_s - event.start_s) * 1e6)
        out.append(
            {
                "name": event.kind,
                "cat": "engine",
                "ph": "X",
                "pid": _PID,
                "tid": event.rank,
                "ts": ts,
                "dur": dur,
                "args": args,
            }
        )
        if event.kind == "send" and event.msg_id >= 0:
            out.append(
                {
                    "name": "message",
                    "cat": "comm",
                    "ph": "s",
                    "id": event.msg_id,
                    "pid": _PID,
                    "tid": event.rank,
                    "ts": event.end_s * 1e6,
                }
            )
        elif event.kind == "recv" and event.match_id >= 0:
            out.append(
                {
                    "name": "message",
                    "cat": "comm",
                    "ph": "f",
                    "bp": "e",
                    "id": event.match_id,
                    "pid": _PID,
                    "tid": event.rank,
                    "ts": event.end_s * 1e6,
                }
            )
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(path, run_or_trace, *, machine_name: str = "repro") -> dict:
    """Serialize :func:`chrome_trace` to ``path``; returns the dict."""
    doc = chrome_trace(run_or_trace, machine_name=machine_name)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return doc
