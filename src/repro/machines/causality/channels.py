"""Trace → concrete channel extraction.

The symbolic protocol verifier (:mod:`repro.analysis.protocol`) predicts
the set of ``(src, dst, tag)`` channels a program can use; this helper
produces the channels a recorded run *actually* used, so the test suite
can prove the static prediction a superset of every dynamic observation
(exact on the striped wavelet program) — the same validation discipline
the wildcard-race rule went through.

Sends are the ground truth: every send event names its destination and
tag at the moment of posting, whereas a receive's ``peer``/``tag`` are
attributes of the *matched* message and would double-count the channel.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.machines.tags import USER_TAG_CEILING

__all__ = ["observed_channels"]


def observed_channels(trace: Iterable, *, user_only: bool = True) -> set:
    """The ``{(src, dst, tag)}`` channels used by a recorded trace.

    With ``user_only`` (the default) channels on registry-reserved tags —
    collective internals, reliable-transport data/acks, bench fan-ins —
    are dropped: they belong to the owning layer's protocol, not the
    program's, and the static verifier exempts them for the same reason.
    Collectives invoked with an explicit user tag (e.g. the PIC final
    gather) stay visible on both sides.
    """
    channels = set()
    for event in trace:
        if event.kind != "send":
            continue
        if user_only and event.tag >= USER_TAG_CEILING:
            continue
        if user_only and _reserved(event.tag):
            continue
        channels.add((event.rank, event.peer, event.tag))
    return channels


def _reserved(tag: int) -> bool:
    from repro.machines.tags import protocol_kind

    return protocol_kind(tag) != "app"
