"""Wildcard-receive message-race detection.

A receive posted with ``ANY_SOURCE`` or ``ANY_TAG`` is the engine's (and
MPI's) only source of matching nondeterminism: which message it consumes
depends on arrival order, which depends on timing.  Following the
Netzer-Miller formulation, a wildcard receive ``R`` that matched send
``S`` is a **race** when some other send ``S'`` targeting the same rank
and matching the posted ``(source, tag)`` pattern could have matched
instead under a different interleaving.  Three orderings make an
alternative impossible and are excluded:

* ``R -> S'`` — a send that causally requires the receive to have
  finished can never race with it;
* the *frontier rule* — ``S'`` was consumed by an earlier receive on
  the same rank (program order before ``R``): given the trace's
  preceding matches, ``S'`` is no longer available when ``R`` posts.
  Genuine nondeterminism is then reported at that earlier receive
  instead, attributing each hazard to the first racy receive
  (Netzer-Miller frontier races);
* the *non-overtaking rule* — the engine's channels are FIFO per
  (source, destination) pair, so a send from the *same source* as the
  matched send, issued later in that source's program order, cannot
  overtake it.  In particular a single-source ``ANY_TAG`` receive is
  always deterministic.

Zero hazards over a trace certifies the traced schedule
interleaving-independent, the property Barina et al. (PAPERS.md) argue
guard-zone exchange schedules should have.  The collectives library and
all three SPMD applications are certified race-free in
``tests/test_causality_*``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machines.causality.graph import HappensBeforeGraph
from repro.machines.engine import ANY_SOURCE, ANY_TAG

__all__ = ["WildcardRace", "DeterminismReport", "find_wildcard_races", "certify_deterministic"]


@dataclass(frozen=True)
class WildcardRace:
    """One nondeterminism hazard: a wildcard receive with at least one
    concurrent alternative matching send.

    ``posted_src`` / ``posted_tag`` are the receive's pattern
    (``ANY_SOURCE`` / ``ANY_TAG`` for wildcards); ``alternatives`` holds
    the trace indices of the sends that could have matched instead of
    ``matched_send``.
    """

    recv_index: int
    rank: int
    posted_src: int
    posted_tag: int
    matched_send: int
    alternatives: tuple

    def describe(self) -> str:
        """One-line hazard summary."""
        src = "ANY_SOURCE" if self.posted_src == ANY_SOURCE else str(self.posted_src)
        tag = "ANY_TAG" if self.posted_tag == ANY_TAG else str(self.posted_tag)
        return (
            f"rank {self.rank} recv(src={src}, tag={tag}) matched send "
            f"#{self.matched_send} but {len(self.alternatives)} concurrent "
            f"alternative(s) could have matched: {list(self.alternatives)}"
        )


@dataclass(frozen=True)
class DeterminismReport:
    """Race-detector verdict over one traced run."""

    wildcard_recvs: int
    races: tuple

    @property
    def deterministic(self) -> bool:
        """True when no wildcard receive has an alternative match."""
        return not self.races


def _as_graph(trace_or_graph) -> HappensBeforeGraph:
    if isinstance(trace_or_graph, HappensBeforeGraph):
        return trace_or_graph
    return HappensBeforeGraph(trace_or_graph)


def find_wildcard_races(trace_or_graph) -> list:
    """Scan every wildcard receive for concurrent alternative sends.

    Accepts a raw trace (``RunResult.trace``) or a pre-built
    :class:`HappensBeforeGraph`; returns a list of :class:`WildcardRace`
    ordered by receive position in the trace.
    """
    graph = _as_graph(trace_or_graph)
    events = graph.events
    sends = [
        i for i, e in enumerate(events) if e.kind == "send" and e.msg_id >= 0
    ]
    races = []
    for r_idx, recv in enumerate(events):
        if recv.kind != "recv" or recv.match_id < 0:
            continue
        if not (recv.wildcard_src or recv.wildcard_tag):
            continue
        posted_src = ANY_SOURCE if recv.wildcard_src else recv.peer
        posted_tag = ANY_TAG if recv.wildcard_tag else recv.tag
        matched_idx = graph.send_of_msg.get(recv.match_id, -1)
        alternatives = []
        for s_idx in sends:
            send = events[s_idx]
            if send.msg_id == recv.match_id:
                continue
            if send.peer != recv.rank:
                continue
            if posted_src != ANY_SOURCE and send.rank != posted_src:
                continue
            if posted_tag != ANY_TAG and send.tag != posted_tag:
                continue
            # A send causally after the receive's completion cannot race.
            if graph.happens_before(r_idx, s_idx):
                continue
            # Frontier rule: already consumed by an earlier receive on
            # this rank, so unavailable given the preceding matches.
            consumer = graph.recv_of_msg.get(send.msg_id, -1)
            if 0 <= consumer < r_idx:
                continue
            # Non-overtaking rule: FIFO channels mean a later send from
            # the matched send's own source cannot arrive first.
            if (
                matched_idx >= 0
                and send.rank == events[matched_idx].rank
                and s_idx > matched_idx
            ):
                continue
            alternatives.append(s_idx)
        if alternatives:
            races.append(
                WildcardRace(
                    recv_index=r_idx,
                    rank=recv.rank,
                    posted_src=posted_src,
                    posted_tag=posted_tag,
                    matched_send=matched_idx,
                    alternatives=tuple(alternatives),
                )
            )
    return races


def certify_deterministic(trace_or_graph) -> DeterminismReport:
    """Run the race detector and summarize: a report with zero races
    certifies the traced schedule's message matching
    interleaving-independent."""
    graph = _as_graph(trace_or_graph)
    wildcards = sum(
        1
        for e in graph.events
        if e.kind == "recv" and (e.wildcard_src or e.wildcard_tag)
    )
    return DeterminismReport(
        wildcard_recvs=wildcards, races=tuple(find_wildcard_races(graph))
    )
