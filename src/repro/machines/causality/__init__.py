"""Causal tracing and message-race analysis for the SPMD engine.

The engine explains *where* time goes (Appendix B's performance budget);
this package explains *why* a schedule is ordered the way it is and
whether that order is an accident of timing:

* :class:`HappensBeforeGraph` — the happens-before partial order over an
  enriched trace (program-order + message edges), with
  ``happens_before`` / ``concurrent`` queries answered from the engine's
  per-event vector clocks.
* :func:`find_wildcard_races` / :func:`certify_deterministic` — for every
  ``ANY_SOURCE``/``ANY_TAG`` receive, the concurrent alternative sends
  that could have matched under a different interleaving; zero hazards
  certifies the schedule interleaving-independent.
* :func:`diagnose_deadlock` — wait-for graph reconstruction from a
  :class:`~repro.errors.DeadlockError`, naming the cycle and each stuck
  rank's posted receive.
* :meth:`HappensBeforeGraph.critical_path` — the longest
  duration-weighted path through the DAG is the run's causal lower
  bound; slack against ``RunResult.elapsed_s`` quantifies contention and
  placement loss (the mechanism behind the Fig. 5 naive-vs-snake gap).
* :func:`chrome_trace` / :func:`write_chrome_trace` — Chrome/Perfetto
  trace-event JSON with flow arrows for messages (``python -m repro
  trace``).
"""

from repro.machines.causality.channels import observed_channels
from repro.machines.causality.deadlock import (
    DeadlockReport,
    PostedOp,
    diagnose_deadlock,
    wait_for_edges,
)
from repro.machines.causality.export import chrome_trace, write_chrome_trace
from repro.machines.causality.graph import CriticalPathAnalysis, HappensBeforeGraph
from repro.machines.causality.races import (
    DeterminismReport,
    WildcardRace,
    certify_deterministic,
    find_wildcard_races,
)

__all__ = [
    "HappensBeforeGraph",
    "CriticalPathAnalysis",
    "WildcardRace",
    "DeterminismReport",
    "find_wildcard_races",
    "certify_deterministic",
    "PostedOp",
    "DeadlockReport",
    "wait_for_edges",
    "diagnose_deadlock",
    "chrome_trace",
    "write_chrome_trace",
    "observed_channels",
]
