"""Happens-before graph over an enriched engine trace.

The engine stamps every traced event with a Lamport clock and a vector
clock (see :class:`repro.machines.engine.TraceEvent`).  This module turns
a trace into a queryable partial order:

* **Program-order edges** connect consecutive events of the same rank.
* **Message edges** connect each send to the receive that matched it
  (``msg_id`` -> ``match_id``).

``happens_before`` answers in O(1) from the vector clocks (Fidge/Mattern:
``a -> b`` iff ``VC(a)[rank(a)] <= VC(b)[rank(a)]`` and ``a != b``); when
stamps are absent (hand-built traces) it falls back to graph reachability,
and :meth:`HappensBeforeGraph.vclocks_consistent` cross-checks the two on
demand.

``critical_path`` computes the run's **causal lower bound**: the longest
duration-weighted path through the happens-before DAG, where a receive is
charged only its intrinsic completion cost (software overhead + copy, not
blocked waiting) and each message edge is charged the *contention-free*
network transit recorded by the engine.  The slack against the measured
``RunResult.elapsed_s`` is therefore exactly the time lost to channel
contention and scheduling skew — the mechanism behind the paper's
naive-vs-snake placement gap (Appendix A Section 5.1).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import CausalityError

if TYPE_CHECKING:
    from repro.machines.engine import TraceEvent

__all__ = ["CriticalPathAnalysis", "HappensBeforeGraph"]


@dataclass(frozen=True)
class CriticalPathAnalysis:
    """Longest duration-weighted path through the happens-before DAG.

    ``lower_bound_s`` is the causal lower bound on the run's makespan;
    ``slack_s = elapsed_s - lower_bound_s`` quantifies contention and
    placement loss.  ``work_s`` / ``comm_s`` / ``transit_s`` split the
    bound into compute, messaging-software, and wire time along the path,
    whose event indices are in ``path``.
    """

    lower_bound_s: float
    elapsed_s: float
    path: tuple
    work_s: float
    comm_s: float
    transit_s: float

    @property
    def slack_s(self) -> float:
        """Elapsed time not explained by the causal chain."""
        return self.elapsed_s - self.lower_bound_s

    @property
    def slack_fraction(self) -> float:
        """Slack as a share of elapsed time (0 for an empty run)."""
        if self.elapsed_s <= 0.0:
            return 0.0
        return self.slack_s / self.elapsed_s


class HappensBeforeGraph:
    """Happens-before partial order over a list of :class:`TraceEvent`.

    Parameters
    ----------
    trace:
        The event list from a traced run (``RunResult.trace``); per-rank
        order in the list is program order.
    """

    def __init__(self, trace) -> None:
        if trace is None:
            raise CausalityError(
                "run has no trace; construct the Engine with record_trace=True"
            )
        self.events = list(trace)
        self.prev_in_rank = [None] * len(self.events)
        self.next_in_rank = [None] * len(self.events)
        self.send_of_msg: dict = {}
        self.recv_of_msg: dict = {}
        last_by_rank: dict = {}
        for i, event in enumerate(self.events):
            prev = last_by_rank.get(event.rank)
            if prev is not None:
                self.prev_in_rank[i] = prev
                self.next_in_rank[prev] = i
            last_by_rank[event.rank] = i
            if event.kind == "send" and event.msg_id >= 0:
                self.send_of_msg[event.msg_id] = i
            if event.kind == "recv" and event.match_id >= 0:
                self.recv_of_msg[event.match_id] = i

    def __len__(self) -> int:
        return len(self.events)

    # -- structure -----------------------------------------------------------

    def message_edges(self) -> list:
        """All matched ``(send_index, recv_index)`` pairs."""
        return sorted(
            (self.send_of_msg[m], r)
            for m, r in self.recv_of_msg.items()
            if m in self.send_of_msg
        )

    def successors(self, index: int) -> list:
        """Direct happens-before successors of an event."""
        event = self._event(index)
        out = []
        if self.next_in_rank[index] is not None:
            out.append(self.next_in_rank[index])
        if event.kind == "send" and event.msg_id in self.recv_of_msg:
            out.append(self.recv_of_msg[event.msg_id])
        return out

    def predecessors(self, index: int) -> list:
        """Direct happens-before predecessors of an event."""
        event = self._event(index)
        out = []
        if self.prev_in_rank[index] is not None:
            out.append(self.prev_in_rank[index])
        if event.kind == "recv" and event.match_id in self.send_of_msg:
            out.append(self.send_of_msg[event.match_id])
        return out

    def _event(self, index: int) -> "TraceEvent":
        if not 0 <= index < len(self.events):
            raise CausalityError(
                f"event index {index} outside trace of {len(self.events)} events"
            )
        return self.events[index]

    # -- order queries -------------------------------------------------------

    def happens_before(self, a: int, b: int) -> bool:
        """True iff event ``a`` causally precedes event ``b``."""
        ea, eb = self._event(a), self._event(b)
        if a == b:
            return False
        va, vb = ea.vclock, eb.vclock
        if va and vb and len(va) == len(vb):
            return va[ea.rank] <= vb[ea.rank] and va != vb
        return self._reachable(a, b)

    def concurrent(self, a: int, b: int) -> bool:
        """True iff neither event causally precedes the other."""
        if a == b:
            return False
        return not self.happens_before(a, b) and not self.happens_before(b, a)

    def _reachable(self, a: int, b: int) -> bool:
        """BFS over program-order + message edges (vclock-free fallback)."""
        frontier = deque([a])
        seen = {a}
        while frontier:
            node = frontier.popleft()
            for nxt in self.successors(node):
                if nxt == b:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False

    def vclocks_consistent(self) -> bool:
        """Cross-check every pair: the vector-clock verdict must equal
        graph reachability.  O(n^2) — intended for tests and small
        traces."""
        n = len(self.events)
        for a in range(n):
            for b in range(n):
                if a == b:
                    continue
                ea, eb = self.events[a], self.events[b]
                if not (ea.vclock and eb.vclock):
                    continue
                by_clock = ea.vclock[ea.rank] <= eb.vclock[ea.rank] and ea.vclock != eb.vclock
                if by_clock != self._reachable(a, b):
                    return False
        return True

    # -- critical path -------------------------------------------------------

    def critical_path(self, elapsed_s: float | None = None) -> CriticalPathAnalysis:
        """Longest duration-weighted path through the DAG (the causal
        lower bound on the makespan).

        Weights: compute/redundancy/send events cost their full duration;
        a recv costs only its post-arrival completion time; a message edge
        costs the contention-free transit (``min_arrive_s`` minus the
        send's end).  Pass the run's ``elapsed_s`` to measure slack
        against the real finish time (defaults to the trace's last end).
        """
        events = self.events
        n = len(events)
        if n == 0:
            elapsed = 0.0 if elapsed_s is None else float(elapsed_s)
            return CriticalPathAnalysis(0.0, elapsed, (), 0.0, 0.0, 0.0)
        # (end_s, index) is a topological key: program-order successors end
        # later on the same rank, and a recv both ends after its matched
        # send and is appended to the trace after it.
        topo = sorted(range(n), key=lambda i: (events[i].end_s, i))
        lb_end = [0.0] * n
        pred = [-1] * n
        via_message = [False] * n
        for i in topo:
            event = events[i]
            ready = 0.0
            best_pred = -1
            best_msg = False
            prev = self.prev_in_rank[i]
            if prev is not None and lb_end[prev] > ready:
                ready, best_pred, best_msg = lb_end[prev], prev, False
            if event.kind == "recv" and event.match_id in self.send_of_msg:
                send_idx = self.send_of_msg[event.match_id]
                candidate = lb_end[send_idx] + self._transit(send_idx, i)
                if candidate > ready:
                    ready, best_pred, best_msg = candidate, send_idx, True
            lb_end[i] = ready + self._intrinsic(event)
            pred[i] = best_pred
            via_message[i] = best_msg
        tail = max(range(n), key=lambda i: lb_end[i])
        bound = lb_end[tail]
        elapsed = float(elapsed_s) if elapsed_s is not None else max(
            e.end_s for e in events
        )

        path = []
        work = comm = transit = 0.0
        i = tail
        while i != -1:
            event = events[i]
            path.append(i)
            if event.kind in ("compute", "redundancy"):
                work += event.end_s - event.start_s
            else:
                comm += self._intrinsic(event)
            if via_message[i]:
                transit += self._transit(pred[i], i)
            i = pred[i]
        path.reverse()
        return CriticalPathAnalysis(
            lower_bound_s=bound,
            elapsed_s=elapsed,
            path=tuple(path),
            work_s=work,
            comm_s=comm,
            transit_s=transit,
        )

    @staticmethod
    def _intrinsic(event) -> float:
        """Event cost excluding blocked waiting (recvs start counting at
        message arrival)."""
        if event.kind == "recv" and event.arrive_s >= 0.0:
            return max(0.0, event.end_s - max(event.start_s, event.arrive_s))
        return max(0.0, event.end_s - event.start_s)

    def _transit(self, send_idx: int, recv_idx: int) -> float:
        """Contention-free wire time of the message on a matched edge."""
        send, recv = self.events[send_idx], self.events[recv_idx]
        if recv.min_arrive_s >= 0.0:
            return max(0.0, recv.min_arrive_s - send.end_s)
        if recv.arrive_s >= 0.0:
            return max(0.0, recv.arrive_s - send.end_s)
        return 0.0
