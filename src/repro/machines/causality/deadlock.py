"""Deadlock diagnosis: wait-for graph reconstruction and cycle naming.

The engine raises :class:`~repro.errors.DeadlockError` when every
unfinished rank is parked in a receive no message can satisfy; the error
carries each stuck rank's posted operation.  This module turns that raw
state into an explanation: the wait-for graph (rank ``r`` waits on rank
``s`` when ``r``'s posted receive names ``s`` as its source — or, for an
``ANY_SOURCE`` receive, on every other stuck rank, since any of them
could in principle unblock it), the cycle through it if one exists, and a
human-readable report naming each rank's posted op.

A cyclic report is the classic communication deadlock (A waits on B waits
on A); an acyclic one is starvation — some rank waits on a peer that
already finished without sending.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CausalityError, DeadlockError
from repro.machines.engine import ANY_SOURCE, ANY_TAG

__all__ = ["PostedOp", "DeadlockReport", "wait_for_edges", "diagnose_deadlock"]


@dataclass(frozen=True)
class PostedOp:
    """The receive a stuck rank was parked on when the engine gave up."""

    rank: int
    src: int
    tag: int

    def describe(self) -> str:
        """Render as ``recv(src=..., tag=...)`` with wildcards named."""
        src = "ANY_SOURCE" if self.src == ANY_SOURCE else str(self.src)
        tag = "ANY_TAG" if self.tag == ANY_TAG else str(self.tag)
        return f"recv(src={src}, tag={tag})"


@dataclass(frozen=True)
class DeadlockReport:
    """Wait-for structure of a deadlocked run.

    ``cycle`` lists the ranks of the first wait-for cycle found (rotated
    so the smallest rank leads; empty when the deadlock is starvation
    rather than a cycle); ``posted`` maps each stuck rank to its
    :class:`PostedOp`; ``edges`` maps each stuck rank to the ranks it
    waits on.
    """

    posted: dict
    edges: dict
    cycle: tuple

    @property
    def is_cycle(self) -> bool:
        """True when a genuine circular wait was found."""
        return bool(self.cycle)

    def describe(self) -> str:
        """Multi-line diagnosis naming the cycle and every posted op."""
        lines = []
        if self.cycle:
            arrows = " -> ".join(str(r) for r in self.cycle + (self.cycle[0],))
            lines.append(f"wait-for cycle: {arrows}")
        else:
            lines.append("no wait-for cycle: starvation (a waited-on rank already finished)")
        for rank in sorted(self.posted):
            waits = self.edges.get(rank, ())
            on = ", ".join(str(w) for w in waits) if waits else "nobody stuck"
            lines.append(
                f"  rank {rank} blocked in {self.posted[rank].describe()} "
                f"(waits on {on})"
            )
        return "\n".join(lines)


def _posted_from(waiting: dict) -> dict:
    posted = {}
    for rank, op in sorted(waiting.items()):
        src = getattr(op, "src", None)
        tag = getattr(op, "tag", None)
        if src is None and isinstance(op, tuple) and len(op) == 2:
            src, tag = op
        if src is None:
            raise CausalityError(
                f"cannot interpret posted op {op!r} for rank {rank}"
            )
        posted[rank] = PostedOp(rank=rank, src=int(src), tag=int(tag))
    return posted


def wait_for_edges(waiting: dict) -> dict:
    """Wait-for adjacency over the stuck ranks.

    ``waiting`` maps rank -> posted receive (``DeadlockError.waiting`` or
    ``{rank: (src, tag)}``).  An ``ANY_SOURCE`` receive waits on every
    other stuck rank.
    """
    posted = _posted_from(waiting)
    stuck = set(posted)
    edges = {}
    for rank, op in sorted(posted.items()):
        if op.src == ANY_SOURCE:
            edges[rank] = tuple(sorted(stuck - {rank}))
        else:
            edges[rank] = (op.src,) if op.src in stuck else ()
    return edges


def _find_cycle(edges: dict) -> tuple:
    """First directed cycle in the wait-for graph (DFS, iterative)."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {rank: WHITE for rank in edges}
    for root in sorted(edges):
        if color[root] != WHITE:
            continue
        stack = [(root, iter(edges[root]))]
        trail = [root]
        color[root] = GRAY
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt not in color:
                    continue
                if color[nxt] == GRAY:
                    cycle = trail[trail.index(nxt):]
                    pivot = cycle.index(min(cycle))
                    return tuple(cycle[pivot:] + cycle[:pivot])
                if color[nxt] == WHITE:
                    color[nxt] = GRAY
                    stack.append((nxt, iter(edges[nxt])))
                    trail.append(nxt)
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
                trail.pop()
    return ()


def diagnose_deadlock(error_or_waiting) -> DeadlockReport:
    """Reconstruct the wait-for graph behind a deadlock and name the
    cycle.

    Accepts the raised :class:`~repro.errors.DeadlockError` or its
    ``waiting`` dict directly.
    """
    if isinstance(error_or_waiting, DeadlockError):
        waiting = error_or_waiting.waiting
    else:
        waiting = dict(error_or_waiting)
    if not waiting:
        raise CausalityError("no stuck ranks to diagnose")
    posted = _posted_from(waiting)
    edges = wait_for_edges(waiting)
    return DeadlockReport(posted=posted, edges=edges, cycle=_find_cycle(edges))
