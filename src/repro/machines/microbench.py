"""Communication microbenchmarks for simulated machines.

The JNNIE effort leaned on micro-performance measurement ("metrics and
structured evaluation methods to discover the sources of performance
degradation in the basic observable behavior of a machine"); these are
the standard micro-kernels, runnable against any :class:`Machine`:

* :func:`ping_pong` — round-trip time vs message size between two ranks;
  fits the alpha-beta model (per-message latency, per-byte cost).
* :func:`ring_bandwidth` — simultaneous neighbor exchange throughput.
* :func:`bisection_exchange` — all pairs across the machine's bisection
  exchanging at once (stresses shared channels; contention shows up as a
  lower effective rate than the ping-pong beta).

All results are virtual-time, so they characterize the *model* — the
test suite uses them to verify the calibrated specs behave like their
parameters claim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.machines.engine import Engine, Machine

__all__ = ["AlphaBeta", "ping_pong", "ring_bandwidth", "bisection_exchange"]

_TAG = 400


@dataclass(frozen=True)
class AlphaBeta:
    """Fitted alpha-beta communication model.

    ``time(n) = alpha + n / beta`` with ``alpha`` in seconds and ``beta``
    in bytes/second, fitted by least squares over the sampled sizes.
    """

    alpha_s: float
    beta_bytes_per_s: float
    samples: tuple  # ((nbytes, one_way_seconds), ...)

    def predict(self, nbytes: float) -> float:
        """Model one-way time for a message of ``nbytes``."""
        return self.alpha_s + nbytes / self.beta_bytes_per_s


def ping_pong(
    machine: Machine,
    sizes=(64, 1024, 16384, 262144),
    *,
    src: int = 0,
    dst: int | None = None,
    repeats: int = 4,
) -> AlphaBeta:
    """Round-trip timing between two ranks, alpha-beta fitted.

    ``dst`` defaults to the last rank (the machine's far corner under the
    default placements).
    """
    if machine.nranks < 2:
        raise ConfigurationError("ping_pong needs at least 2 ranks")
    dst = machine.nranks - 1 if dst is None else dst
    if src == dst:
        raise ConfigurationError("ping_pong endpoints must differ")

    samples = []
    for nbytes in sizes:
        payload = np.zeros(max(1, nbytes // 8))

        def program(ctx):
            if ctx.rank == src:
                for _ in range(repeats):
                    yield ctx.send(dst, payload, tag=_TAG)
                    _ = yield ctx.recv(dst, tag=_TAG)
            elif ctx.rank == dst:
                for _ in range(repeats):
                    received = yield ctx.recv(src, tag=_TAG)
                    yield ctx.send(src, received, tag=_TAG)
            return None

        run = Engine(machine).run(program)
        one_way = run.elapsed_s / (2 * repeats)
        samples.append((payload.nbytes, one_way))

    nbytes = np.array([s[0] for s in samples], dtype=np.float64)
    times = np.array([s[1] for s in samples])
    slope, alpha = np.polyfit(nbytes, times, 1)
    if slope <= 0:
        raise ConfigurationError("degenerate fit: non-positive per-byte cost")
    return AlphaBeta(
        alpha_s=float(max(alpha, 0.0)),
        beta_bytes_per_s=float(1.0 / slope),
        samples=tuple(samples),
    )


def ring_bandwidth(machine: Machine, nbytes: int = 262144) -> float:
    """Aggregate bytes/second when every rank sends ``nbytes`` to its
    right neighbor simultaneously (neighbor exchanges are the wavelet
    guard-zone pattern)."""
    if machine.nranks < 2:
        raise ConfigurationError("ring_bandwidth needs at least 2 ranks")
    payload = np.zeros(max(1, nbytes // 8))

    def program(ctx):
        right = (ctx.rank + 1) % ctx.nranks
        left = (ctx.rank - 1) % ctx.nranks
        yield ctx.send(right, payload, tag=_TAG)
        _ = yield ctx.recv(left, tag=_TAG)
        return None

    run = Engine(machine).run(program)
    return machine.nranks * payload.nbytes / run.elapsed_s


def bisection_exchange(machine: Machine, nbytes: int = 262144) -> float:
    """Aggregate bytes/second when the lower half of the ranks exchanges
    with the upper half pairwise (rank i <-> rank i + P/2) — the classic
    bisection-bandwidth stress."""
    if machine.nranks < 2 or machine.nranks % 2 != 0:
        raise ConfigurationError("bisection_exchange needs an even rank count >= 2")
    payload = np.zeros(max(1, nbytes // 8))
    half = machine.nranks // 2

    def program(ctx):
        partner = ctx.rank + half if ctx.rank < half else ctx.rank - half
        yield ctx.send(partner, payload, tag=_TAG)
        _ = yield ctx.recv(partner, tag=_TAG)
        return None

    run = Engine(machine).run(program)
    return machine.nranks * payload.nbytes / run.elapsed_s
