"""Particle push with adaptive time-step control (step 4 of the paper's
PIC scheme).

The paper's algorithm "includes an adaptive time-step adjustment scheme in
order to prevent the particles from moving any further than neighboring
grid cells": before each push the step is shrunk so the fastest particle
travels at most ``max_cell_fraction`` of a cell.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.pic.grid import Grid3D

__all__ = ["adaptive_dt", "push_particles"]


def adaptive_dt(
    grid: Grid3D,
    velocities: np.ndarray,
    dt_max: float,
    *,
    max_cell_fraction: float = 0.5,
) -> float:
    """Largest step <= ``dt_max`` keeping every displacement under
    ``max_cell_fraction`` of a cell.

    In the parallel code each rank computes this over its own particles
    and the global step is the all-reduce minimum.
    """
    if dt_max <= 0:
        raise ConfigurationError(f"dt_max must be positive, got {dt_max}")
    if not 0 < max_cell_fraction <= 1:
        raise ConfigurationError(
            f"max_cell_fraction must be in (0, 1], got {max_cell_fraction}"
        )
    vmax = float(np.abs(velocities).max()) if velocities.size else 0.0
    if vmax == 0.0:
        return dt_max
    return min(dt_max, max_cell_fraction * grid.spacing / vmax)


def push_particles(
    grid: Grid3D,
    positions: np.ndarray,
    velocities: np.ndarray,
    forces: np.ndarray,
    masses: np.ndarray,
    dt: float,
) -> tuple:
    """Semi-implicit Euler push: ``v += F/m dt``, ``x += v dt``, positions
    wrapped into the periodic box.  Returns new (positions, velocities)."""
    if dt <= 0:
        raise ConfigurationError(f"dt must be positive, got {dt}")
    masses = np.asarray(masses, dtype=np.float64)
    new_velocities = velocities + forces / masses[:, None] * dt
    new_positions = grid.wrap_positions(positions + new_velocities * dt)
    return new_positions, new_velocities
