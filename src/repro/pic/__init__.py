"""3-D electrostatic Particle-In-Cell simulation (Appendix B's plasma
application).

Sequential API: :class:`Grid3D`, :func:`deposit_cic`,
:func:`solve_poisson`, :func:`electric_field`, :func:`gather_field`,
:func:`push_particles`, wrapped by :class:`PicSimulation`.
Parallel API: :func:`run_parallel_pic` (worker-worker SPMD with slab FFT
and selectable global-sum implementation).
"""

from repro.pic.cost import (
    deposit_cost,
    fft_1d_cost,
    fft_3d_cost,
    field_cost,
    gather_cost,
    particle_step_cost,
    push_cost,
)
from repro.pic.deposit import cic_weights, deposit_cic
from repro.pic.diagnostics import (
    EnergyHistory,
    density_mode_spectrum,
    energy_history,
    estimate_plasma_frequency,
    velocity_moments,
)
from repro.pic.grid import Grid3D
from repro.pic.interpolate import gather_field
from repro.pic.parallel import (
    ParallelPicOutcome,
    particle_share,
    pic_program,
    run_parallel_pic,
)
from repro.pic.parallel_fft import parallel_poisson, slab_bounds
from repro.pic.poisson import electric_field, poisson_spectrum_multiplier, solve_poisson
from repro.pic.push import adaptive_dt, push_particles
from repro.pic.simulation import PicSimulation, PicStepStats

__all__ = [
    "Grid3D",
    "deposit_cic",
    "cic_weights",
    "solve_poisson",
    "electric_field",
    "poisson_spectrum_multiplier",
    "gather_field",
    "adaptive_dt",
    "push_particles",
    "PicSimulation",
    "PicStepStats",
    "parallel_poisson",
    "slab_bounds",
    "ParallelPicOutcome",
    "pic_program",
    "run_parallel_pic",
    "particle_share",
    "deposit_cost",
    "gather_cost",
    "push_cost",
    "particle_step_cost",
    "fft_1d_cost",
    "fft_3d_cost",
    "field_cost",
    "EnergyHistory",
    "energy_history",
    "estimate_plasma_frequency",
    "velocity_moments",
    "density_mode_spectrum",
]
