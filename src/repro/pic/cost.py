"""Machine-model operation counts for the PIC phases.

Per-particle constants are calibrated (with the Paragon/T3D CPU rates in
:mod:`repro.machines.specs`) against Appendix B Table 1/2's serial PIC
rows: ~43 us/particle/iteration on the i860, ~16 us on the Alpha, with
the memory-heavy mix the paper measured (~40% load/store, 23% FP).
FFT work is the textbook ``5 N log2 N`` real-op count per 1-D transform.
"""

from __future__ import annotations

import math

from repro.wavelet.cost import OpCount

__all__ = [
    "deposit_cost",
    "gather_cost",
    "push_cost",
    "fft_1d_cost",
    "fft_3d_cost",
    "field_cost",
    "particle_step_cost",
]

# Per-particle op charges per phase (deposit + gather + push together give
# the calibrated ~43 us/particle on the Paragon spec).
_DEPOSIT = OpCount(flops=24.0, intops=9.0, memops=50.0)
_GATHER = OpCount(flops=28.0, intops=8.0, memops=55.0)
_PUSH = OpCount(flops=8.0, intops=3.0, memops=15.0)


def deposit_cost(num_particles: int) -> OpCount:
    """Cloud-in-cell deposition over ``num_particles``."""
    return _DEPOSIT * num_particles


def gather_cost(num_particles: int) -> OpCount:
    """Field interpolation to ``num_particles``."""
    return _GATHER * num_particles


def push_cost(num_particles: int) -> OpCount:
    """Velocity/position update for ``num_particles``."""
    return _PUSH * num_particles


def particle_step_cost(num_particles: int) -> OpCount:
    """All particle-bound phases of one step."""
    return deposit_cost(num_particles) + gather_cost(num_particles) + push_cost(
        num_particles
    )


def fft_1d_cost(length: int) -> OpCount:
    """One complex 1-D FFT of ``length`` points."""
    stages = max(1, int(math.log2(max(2, length))))
    flops = 5.0 * length * stages
    return OpCount(flops=flops, intops=flops * 0.3, memops=flops * 0.6)


def fft_3d_cost(m: int) -> OpCount:
    """Full 3-D FFT of an ``m^3`` grid (three sweeps of ``m^2`` 1-D FFTs)."""
    return fft_1d_cost(m) * (3 * m * m)


def field_cost(m: int) -> OpCount:
    """k-space multiply plus central-difference gradient on an ``m^3`` grid."""
    cells = m**3
    return OpCount(flops=10.0 * cells, intops=3.0 * cells, memops=14.0 * cells)
