"""Field gather (step 3 of the paper's PIC scheme).

Interpolates the grid electric field to particle positions with the same
Cloud-In-Cell weights used for deposition.  Using identical weights for
scatter and gather eliminates the self-force a particle would otherwise
exert on itself — an invariant the test suite checks directly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.pic.deposit import cic_weights
from repro.pic.grid import Grid3D

__all__ = ["gather_field"]


def gather_field(grid: Grid3D, field: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """Evaluate a vector grid field at particle positions.

    Parameters
    ----------
    field:
        ``(3, m, m, m)`` vector field (e.g. the electric field).
    positions:
        ``(n, 3)`` particle positions.

    Returns
    -------
    numpy.ndarray
        ``(n, 3)`` per-particle field values.
    """
    field = np.asarray(field, dtype=np.float64)
    if field.shape != (3, grid.m, grid.m, grid.m):
        raise ConfigurationError(
            f"field shape {field.shape} does not match (3, {grid.m}^3)"
        )
    base, frac = cic_weights(grid, positions)
    out = np.zeros((positions.shape[0], 3))
    m = grid.m
    for corner in range(8):
        offsets = np.array([(corner >> d) & 1 for d in range(3)])
        weight = np.ones(base.shape[0])
        for d in range(3):
            weight *= frac[:, d] if offsets[d] else (1.0 - frac[:, d])
        idx = (base + offsets) % m
        for component in range(3):
            out[:, component] += weight * field[component, idx[:, 0], idx[:, 1], idx[:, 2]]
    return out
