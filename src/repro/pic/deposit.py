"""Cloud-In-Cell charge deposition (step 1 of the paper's PIC scheme).

Each finite-size charge cloud is shared among the 2^3 grid points of the
cell containing it with trilinear weights — the 3-D generalization of the
paper's 1-D formula ``rho_g = q_i (x_i - x_{g-1}) / dx``.  Deposition is
fully vectorized via ``np.add.at`` scatter-adds.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.pic.grid import Grid3D

__all__ = ["deposit_cic", "cic_weights"]


def cic_weights(grid: Grid3D, positions: np.ndarray) -> tuple:
    """Lower-corner cell indices and per-axis weights of each particle.

    Returns ``(base, frac)``: ``base[p, d]`` the index of the grid point at
    or below the particle along axis ``d``, ``frac[p, d]`` the fractional
    distance to it in cell units (weight of the *upper* neighbor).
    """
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise ConfigurationError("positions must be (n, 3)")
    scaled = grid.wrap_positions(positions) / grid.spacing
    base = np.floor(scaled).astype(np.int64)
    frac = scaled - base
    base %= grid.m  # guard the exact-upper-boundary case
    return base, frac


def deposit_cic(
    grid: Grid3D, positions: np.ndarray, charges: np.ndarray
) -> np.ndarray:
    """Deposit particle charges onto the grid, returning the charge-density
    field (charge per cell volume).

    The deposition conserves total charge exactly:
    ``rho.sum() * cell_volume == charges.sum()``.
    """
    charges = np.asarray(charges, dtype=np.float64)
    base, frac = cic_weights(grid, positions)
    if charges.shape != (base.shape[0],):
        raise ConfigurationError("charges must have one entry per particle")

    rho = grid.zeros()
    m = grid.m
    for corner in range(8):
        offsets = np.array([(corner >> d) & 1 for d in range(3)])
        weight = np.ones(base.shape[0])
        for d in range(3):
            weight *= frac[:, d] if offsets[d] else (1.0 - frac[:, d])
        idx = (base + offsets) % m
        np.add.at(rho, (idx[:, 0], idx[:, 1], idx[:, 2]), charges * weight)
    return rho / grid.cell_volume()
