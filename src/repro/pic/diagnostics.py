"""Diagnostics for PIC simulations.

Analysis tools over :class:`~repro.pic.simulation.PicStepStats` histories
and particle states: total-energy bookkeeping, plasma-frequency
estimation from the field-energy oscillation, velocity-distribution
moments, and the charge-density mode spectrum (which the two-stream
instability pumps).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.particles import ParticleSet
from repro.errors import ConfigurationError
from repro.pic.deposit import deposit_cic
from repro.pic.grid import Grid3D

__all__ = [
    "EnergyHistory",
    "energy_history",
    "estimate_plasma_frequency",
    "velocity_moments",
    "density_mode_spectrum",
]


@dataclass(frozen=True)
class EnergyHistory:
    """Field/kinetic/total energy series extracted from step stats."""

    times: np.ndarray
    field: np.ndarray
    kinetic: np.ndarray

    @property
    def total(self) -> np.ndarray:
        """Field plus kinetic energy per step."""
        return self.field + self.kinetic

    def max_drift(self) -> float:
        """Largest relative departure of the total energy from its start."""
        total = self.total
        reference = max(abs(total[0]), 1e-30)
        return float(np.abs(total - total[0]).max() / reference)


def energy_history(stats: list) -> EnergyHistory:
    """Build an :class:`EnergyHistory` from a ``PicSimulation`` history."""
    if not stats:
        raise ConfigurationError("empty step history")
    dts = np.array([s.dt for s in stats])
    return EnergyHistory(
        times=np.cumsum(dts),
        field=np.array([s.field_energy for s in stats]),
        kinetic=np.array([s.kinetic_energy for s in stats]),
    )


def estimate_plasma_frequency(history: EnergyHistory) -> float:
    """Estimate ``omega_p`` from the field-energy oscillation.

    The field energy of a Langmuir oscillation varies as
    ``cos^2(omega_p t)`` — i.e. at ``2 omega_p`` — so the dominant
    nonzero frequency of the (uniformly resampled) field series is twice
    the plasma frequency.
    """
    if history.times.size < 8:
        raise ConfigurationError("need at least 8 samples to estimate a frequency")
    # Resample onto a uniform clock (adaptive stepping may vary dt).
    uniform_t = np.linspace(history.times[0], history.times[-1], history.times.size)
    field = np.interp(uniform_t, history.times, history.field)
    field = field - field.mean()
    spectrum = np.abs(np.fft.rfft(field))
    freqs = np.fft.rfftfreq(field.size, d=uniform_t[1] - uniform_t[0])
    peak = int(np.argmax(spectrum[1:])) + 1
    return float(np.pi * freqs[peak])  # omega = 2*pi*f / 2


def velocity_moments(particles: ParticleSet) -> dict:
    """Mean drift and thermal spread per axis plus total rms speed."""
    velocities = particles.velocities
    return {
        "drift": velocities.mean(axis=0),
        "thermal": velocities.std(axis=0),
        "rms_speed": float(np.sqrt((velocities**2).sum(axis=1).mean())),
    }


def density_mode_spectrum(
    grid: Grid3D, particles: ParticleSet, axis: int = 0, modes: int = 8
) -> np.ndarray:
    """Amplitudes of the first ``modes`` density Fourier modes along an
    axis (mode 1 is the one the two-stream instability amplifies).

    Returns ``|rho_k| / |rho_0|`` for ``k = 1..modes``.
    """
    if not 0 <= axis < 3:
        raise ConfigurationError(f"axis must be 0..2, got {axis}")
    if modes < 1 or modes >= grid.m // 2:
        raise ConfigurationError(
            f"modes must be in [1, {grid.m // 2}), got {modes}"
        )
    rho = deposit_cic(grid, particles.positions, particles.masses)
    other_axes = tuple(a for a in range(3) if a != axis)
    line = rho.mean(axis=other_axes)
    spectrum = np.abs(np.fft.rfft(line))
    if spectrum[0] == 0:
        raise ConfigurationError("zero mean density")
    return spectrum[1 : modes + 1] / spectrum[0]
