"""Spectral Poisson solver (step 2 of the paper's PIC scheme).

Solves ``laplacian(phi) = -rho`` on the periodic grid by FFT, using the
discrete 7-point-Laplacian eigenvalues so the result is the exact inverse
of the finite-difference operator.  The mean (k=0) mode is projected out —
physically, a neutralizing uniform background charge, which is the
standard closure for periodic electrostatic plasmas (a non-neutral
periodic box has no solution).

The electric field follows the paper's central difference
``E = -grad(phi)``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.pic.grid import Grid3D

__all__ = ["solve_poisson", "electric_field", "poisson_spectrum_multiplier"]


def poisson_spectrum_multiplier(grid: Grid3D) -> np.ndarray:
    """The k-space multiplier taking ``rho_k`` to ``phi_k``.

    ``phi_k = -rho_k / lambda_k`` with ``lambda_k`` the FD-Laplacian
    eigenvalues; the k=0 entry is zero (mean mode removed).
    """
    eigenvalues = grid.laplacian_eigenvalues()
    multiplier = np.zeros_like(eigenvalues)
    nonzero = eigenvalues != 0.0
    multiplier[nonzero] = -1.0 / eigenvalues[nonzero]
    return multiplier


def solve_poisson(grid: Grid3D, rho: np.ndarray) -> np.ndarray:
    """Solve ``laplacian(phi) = -rho`` and return the periodic potential.

    The returned field satisfies ``grid.fd_laplacian(phi) == -(rho -
    rho.mean())`` to FFT precision.
    """
    rho = np.asarray(rho, dtype=np.float64)
    if rho.shape != (grid.m, grid.m, grid.m):
        raise ConfigurationError(
            f"rho shape {rho.shape} does not match the {grid.m}^3 grid"
        )
    rho_k = np.fft.fftn(rho)
    phi_k = rho_k * poisson_spectrum_multiplier(grid)
    return np.fft.ifftn(phi_k).real


def electric_field(grid: Grid3D, phi: np.ndarray) -> np.ndarray:
    """``E = -grad(phi)`` by the paper's central difference; shape
    ``(3, m, m, m)``."""
    return -grid.fd_gradient(phi)
