"""Periodic uniform grid for the 3-D electrostatic PIC code.

Appendix B's simulations use ``m x m x m`` grids (m = 32 or 64) with
wrap-around boundary conditions; the grid object centralizes geometry
(spacing, wrapping) and the field arrays' conventions: scalar fields are
``(m, m, m)`` C-ordered arrays indexed ``[ix, iy, iz]``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Grid3D"]


@dataclass(frozen=True)
class Grid3D:
    """Cubic periodic grid.

    Parameters
    ----------
    m:
        Cells per dimension.
    extent:
        Physical box side; spacing is ``extent / m``.
    """

    m: int
    extent: float = 1.0

    def __post_init__(self) -> None:
        if self.m < 2:
            raise ConfigurationError(f"grid needs m >= 2, got {self.m}")
        if self.extent <= 0:
            raise ConfigurationError(f"extent must be positive, got {self.extent}")

    @property
    def spacing(self) -> float:
        """Cell size (uniform in all dimensions)."""
        return self.extent / self.m

    @property
    def num_cells(self) -> int:
        """Total grid points."""
        return self.m**3

    def zeros(self) -> np.ndarray:
        """A fresh zero scalar field."""
        return np.zeros((self.m, self.m, self.m))

    def wrap_positions(self, positions: np.ndarray) -> np.ndarray:
        """Map positions into the periodic box ``[0, extent)``."""
        return np.mod(positions, self.extent)

    def cell_volume(self) -> float:
        """Volume of one cell."""
        return self.spacing**3

    def laplacian_eigenvalues(self) -> np.ndarray:
        """Eigenvalues of the 7-point finite-difference Laplacian under the
        DFT basis: ``sum_d (2 cos(2 pi k_d / m) - 2) / dx^2``.

        Using these (rather than the continuum ``-k^2``) makes the spectral
        Poisson solve the *exact* inverse of the discrete operator, which
        the test suite verifies by applying the stencil to the solution.
        """
        k = np.arange(self.m)
        one_d = (2.0 * np.cos(2.0 * np.pi * k / self.m) - 2.0) / self.spacing**2
        return (
            one_d[:, None, None] + one_d[None, :, None] + one_d[None, None, :]
        )

    def fd_laplacian(self, field: np.ndarray) -> np.ndarray:
        """Apply the periodic 7-point Laplacian stencil (for verification)."""
        out = -6.0 * field
        for axis in range(3):
            out += np.roll(field, 1, axis=axis) + np.roll(field, -1, axis=axis)
        return out / self.spacing**2

    def fd_gradient(self, field: np.ndarray) -> np.ndarray:
        """Central-difference gradient, the paper's field evaluation
        ``E_g = -(phi_{g+1} - phi_{g-1}) / (2 dx)`` (sign applied by the
        caller).  Returns shape ``(3, m, m, m)``."""
        out = np.empty((3,) + field.shape)
        for axis in range(3):
            out[axis] = (
                np.roll(field, -1, axis=axis) - np.roll(field, 1, axis=axis)
            ) / (2.0 * self.spacing)
        return out
