"""Sequential 3-D electrostatic PIC driver.

One step runs the paper's four phases:

1. deposit charge on the grid (Cloud-In-Cell),
2. solve Poisson's equation by FFT and form ``E = -grad(phi)``,
3. interpolate the field to the particles (force = q E),
4. push the particles with the adaptive step.

Total complexity ``O(Np + Ng log Ng)`` per step, as the paper derives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.particles import ParticleSet
from repro.errors import ConfigurationError
from repro.pic.deposit import deposit_cic
from repro.pic.grid import Grid3D
from repro.pic.interpolate import gather_field
from repro.pic.poisson import electric_field, solve_poisson
from repro.pic.push import adaptive_dt, push_particles

__all__ = ["PicStepStats", "PicSimulation"]


@dataclass
class PicStepStats:
    """Per-step diagnostics."""

    step: int
    dt: float
    field_energy: float
    kinetic_energy: float
    total_charge: float


@dataclass
class PicSimulation:
    """Sequential electrostatic PIC simulation.

    Parameters
    ----------
    grid:
        The periodic field grid.
    particles:
        Particle state; ``masses`` double as the (positive) charge
        magnitudes, with charge ``q = charge_sign * mass``.
    dt_max:
        Upper bound of the adaptive step.
    charge_sign:
        Sign of the particle charge (electrons: -1).
    """

    grid: Grid3D
    particles: ParticleSet
    dt_max: float = 0.05
    charge_sign: float = -1.0
    history: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.particles.dim != 3:
            raise ConfigurationError("PIC requires 3-D particles")
        if self.dt_max <= 0:
            raise ConfigurationError(f"dt_max must be positive, got {self.dt_max}")
        self.particles.positions = self.grid.wrap_positions(self.particles.positions)
        self._step = 0

    @property
    def charges(self) -> np.ndarray:
        """Per-particle charges."""
        return self.charge_sign * self.particles.masses

    def fields(self) -> tuple:
        """Compute (rho, phi, E) for the current particle state."""
        rho = deposit_cic(self.grid, self.particles.positions, self.charges)
        phi = solve_poisson(self.grid, rho)
        return rho, phi, electric_field(self.grid, phi)

    def step(self) -> PicStepStats:
        """Advance one adaptive step; returns the step's diagnostics."""
        ps = self.particles
        rho, phi, efield = self.fields()
        particle_field = gather_field(self.grid, efield, ps.positions)
        forces = self.charges[:, None] * particle_field
        dt = adaptive_dt(self.grid, ps.velocities, self.dt_max)
        ps.positions, ps.velocities = push_particles(
            self.grid, ps.positions, ps.velocities, forces, ps.masses, dt
        )
        self._step += 1
        stats = PicStepStats(
            step=self._step,
            dt=dt,
            field_energy=float(0.5 * ((efield**2).sum()) * self.grid.cell_volume()),
            kinetic_energy=ps.kinetic_energy(),
            total_charge=float(rho.sum() * self.grid.cell_volume()),
        )
        self.history.append(stats)
        return stats

    def run(self, steps: int) -> list:
        """Advance ``steps`` steps."""
        return [self.step() for _ in range(steps)]
