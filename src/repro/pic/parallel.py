"""Parallel 3-D electrostatic PIC: the worker-worker SPMD code of
Appendix B.

Particles are divided uniformly among the processors; each rank deposits
its particles on a *full local grid copy*, the copies are combined with a
global sum, the Poisson solve runs on the slab-decomposed parallel FFT,
and every rank ends up with the global field to gather forces for its own
particles.  The time step is the all-reduce minimum of the per-rank
adaptive steps.

Two ablations from the paper are selectable:

* ``global_sum`` — ``"prefix"`` (the authors' recursive-doubling
  replacement) vs ``"gssum"`` (the vendor-style many-to-many exchange
  whose collapse beyond 8 processors Section 4.2.2 reports) vs
  ``"rabenseifner"`` (reduce-scatter + allgather over the charge grid,
  bandwidth-optimal for large grids).
* ``poisson`` — ``"slab"`` (parallel FFT) vs ``"replicated"`` (every rank
  solves the full grid locally: communication traded for duplication
  redundancy, the §5.3 observation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.particles import ParticleSet
from repro.errors import ConfigurationError
from repro.machines import tags
from repro.machines.api import (
    allreduce,
    allreduce_rabenseifner,
    gather,
    gssum_naive,
)
from repro.machines.engine import Machine, RunResult
from repro.pic.cost import (
    deposit_cost,
    fft_3d_cost,
    field_cost,
    gather_cost,
    push_cost,
)
from repro.pic.deposit import deposit_cic
from repro.pic.grid import Grid3D
from repro.pic.interpolate import gather_field
from repro.pic.parallel_fft import parallel_electric_field, parallel_poisson
from repro.pic.poisson import electric_field, solve_poisson
from repro.pic.push import adaptive_dt, push_particles

__all__ = ["ParallelPicOutcome", "pic_program", "run_parallel_pic", "particle_share"]

_TAG_FINAL = tags.PIC_FINAL

_BYTES_PER_PARTICLE = 48  # 3 positions + 3 velocities, double precision


@dataclass
class ParallelPicOutcome:
    """Result of a parallel PIC run."""

    run: RunResult
    particles: ParticleSet
    dts: list


def particle_share(n: int, nranks: int, rank: int) -> slice:
    """Uniform contiguous particle slice owned by ``rank``."""
    base = n // nranks
    extra = n % nranks
    start = rank * base + min(rank, extra)
    stop = start + base + (1 if rank < extra else 0)
    return slice(start, stop)


def pic_program(
    ctx,
    grid: Grid3D,
    particles: ParticleSet,
    steps: int,
    *,
    dt_max: float = 0.05,
    charge_sign: float = -1.0,
    global_sum: str = "prefix",
    poisson: str = "slab",
    collect: bool = True,
    checkpoint_interval: int = 0,
    restore=None,
):
    """Rank program for the worker-worker PIC code.

    ``collect=False`` skips the final particle gather to rank 0, leaving
    only per-iteration traffic in the communication budget (what the
    paper's per-iteration comm figures measure).

    Every rank owns its particle slice for the whole run, so a
    coordinated checkpoint (``checkpoint_interval > 0``) is rank-local
    state: next step, positions, velocities, and the ``dt`` history.
    ``restore`` is the per-rank state list from a
    :class:`~repro.errors.RankCrashError`.
    """
    if global_sum not in ("prefix", "gssum", "rabenseifner"):
        raise ConfigurationError(f"unknown global_sum {global_sum!r}")
    if poisson not in ("slab", "replicated"):
        raise ConfigurationError(f"unknown poisson {poisson!r}")
    nranks = ctx.nranks
    rank = ctx.rank
    share = particle_share(particles.n, nranks, rank)
    masses = particles.masses[share].copy()
    charges = charge_sign * masses
    if restore is not None:
        start_step, positions, velocities, dts = restore[rank]
        positions = np.asarray(positions, dtype=np.float64)
        velocities = np.asarray(velocities, dtype=np.float64)
        dts = list(dts)
    else:
        start_step = 0
        positions = grid.wrap_positions(particles.positions[share].copy())
        velocities = particles.velocities[share].copy()
        dts = []
    my_n = positions.shape[0]

    grid_bytes = 6 * grid.num_cells * 8  # rho, phi, 3 E components, scratch
    yield ctx.set_resident_memory(my_n * _BYTES_PER_PARTICLE + grid_bytes)

    for _step in range(start_step, steps):
        # Phase 1: local deposition on a full grid copy.
        rho_local = deposit_cic(grid, positions, charges)
        yield ctx.charge(deposit_cost(my_n))

        # Global charge combine: the paper's gssum vs parallel-prefix story.
        if global_sum == "gssum":
            rho = yield from gssum_naive(ctx, rho_local)
        elif global_sum == "rabenseifner":
            rho = yield from allreduce_rabenseifner(ctx, rho_local)
        else:
            rho = yield from allreduce(ctx, rho_local)

        # Phase 2: Poisson solve and field evaluation.
        if poisson == "slab" and nranks > 1 and grid.m % nranks == 0:
            phi = yield from parallel_poisson(ctx, grid, rho)
            efield = yield from parallel_electric_field(ctx, grid, phi)
        else:
            # Replicated solve: every rank computes the full grid.  One
            # copy is useful work, the other P-1 copies are duplication
            # redundancy (Appendix B's accounting), averaged per rank.
            phi = solve_poisson(grid, rho)
            efield = electric_field(grid, phi)
            cost = fft_3d_cost(grid.m) + 2.0 * field_cost(grid.m)
            yield ctx.charge(cost * (1.0 / nranks))
            if nranks > 1:
                yield ctx.charge(cost * ((nranks - 1.0) / nranks), redundant=True)

        # Phase 3: gather forces for the local particles.
        particle_field = gather_field(grid, efield, positions)
        yield ctx.charge(gather_cost(my_n))
        forces = charges[:, None] * particle_field

        # Phase 4: adaptive step (global min) and push.
        local_dt = adaptive_dt(grid, velocities, dt_max)
        dt = yield from allreduce(ctx, local_dt, op=min)
        positions, velocities = push_particles(
            grid, positions, velocities, forces, masses, dt
        )
        yield ctx.charge(push_cost(my_n))
        dts.append(dt)

        if checkpoint_interval > 0 and (_step + 1) % checkpoint_interval == 0:
            yield ctx.checkpoint((_step + 1, positions, velocities, dts))

    if not collect:
        return {"pieces": [(positions, velocities)], "dts": dts} if rank == 0 else None
    final = yield from gather(ctx, (positions, velocities), root=0, tag=_TAG_FINAL)
    if rank == 0:
        return {"pieces": final, "dts": dts}
    return None


def run_parallel_pic(
    machine: Machine,
    grid: Grid3D,
    particles: ParticleSet,
    steps: int,
    *,
    record_trace: bool = False,
    **kwargs,
) -> ParallelPicOutcome:
    """Run the worker-worker PIC code on a simulated machine.

    ``record_trace`` enables engine event tracing on the returned run
    (timeline rendering, causality analysis).  Remaining keyword
    arguments are forwarded to :func:`pic_program` (``dt_max``,
    ``charge_sign``, ``global_sum``, ``poisson``).

    Thin wrapper over the runtime layer: builds a
    :class:`~repro.runtime.spec.JobSpec` for the registered ``pic``
    program and runs it through :func:`repro.runtime.execute`.
    """
    from repro.runtime import JobSpec, RunOptions, execute

    checkpoint_interval = int(kwargs.pop("checkpoint_interval", 0))
    spec = JobSpec(
        program="pic",
        params={"grid": grid, "particles": particles, "steps": steps, **kwargs},
        options=RunOptions(
            record_trace=record_trace, checkpoint_interval=checkpoint_interval
        ),
    )
    return execute(machine, spec).outcome
