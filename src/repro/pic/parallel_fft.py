"""Slab-decomposed parallel 3-D FFT Poisson solve.

Implements the paper's scheme: "the data are stored in such a way that
each 'plane' formed by two of the dimensions is entirely within one
processor and the other dimension is divided among the processors ...
To transform along the other dimension, the data are rearranged among the
processors so that the slabs contain this third dimension" — i.e. local
2-D FFTs on z-slabs, an all-to-all transpose into y-slabs, a local 1-D
FFT along z, the k-space multiply, and the mirrored inverse path.  At the
end the potential is made global with an all-gather, exactly as the paper
notes ("every processor will have ... the global field information").

All routines are generator subroutines for use inside SPMD rank programs
(``phi = yield from parallel_poisson(ctx, grid, rho)``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.machines.api import allgather, alltoall
from repro.pic.cost import fft_1d_cost, field_cost
from repro.pic.grid import Grid3D
from repro.pic.poisson import poisson_spectrum_multiplier

__all__ = ["parallel_poisson", "parallel_electric_field", "slab_bounds"]


def slab_bounds(m: int, nranks: int, rank: int) -> tuple:
    """The ``[start, stop)`` range of planes owned by ``rank``.

    Requires ``m`` divisible by ``nranks`` (the paper's slab scheme).
    """
    if m % nranks != 0:
        raise ConfigurationError(
            f"slab decomposition needs grid size {m} divisible by {nranks} ranks"
        )
    width = m // nranks
    return rank * width, (rank + 1) * width


def parallel_poisson(ctx, grid: Grid3D, rho: np.ndarray):
    """Distributed Poisson solve; every rank passes the full (globally
    summed) charge density and receives the full potential.

    Rank ``r`` transforms only its slab; communication is two all-to-all
    transposes plus the final all-gather.
    """
    m = grid.m
    nranks = ctx.nranks
    rank = ctx.rank
    z0, z1 = slab_bounds(m, nranks, rank)
    width = m // nranks

    # Forward 2-D FFT on the local z-slab (planes are local: axes x, y).
    slab = np.fft.fft2(rho[:, :, z0:z1], axes=(0, 1))
    yield ctx.charge(fft_1d_cost(m) * (2 * m * width))

    # Transpose to y-slabs: block (x, y-range of dst, local z) to each rank.
    blocks = [np.ascontiguousarray(slab[:, r * width : (r + 1) * width, :]) for r in range(nranks)]
    received = yield from alltoall(ctx, blocks)
    yslab = np.concatenate(received, axis=2)  # (m, width, m): full z now local

    # 1-D FFT along z, k-space multiply on the local y-slab.
    yslab = np.fft.fft(yslab, axis=2)
    yield ctx.charge(fft_1d_cost(m) * (m * width))
    multiplier = poisson_spectrum_multiplier(grid)
    y0 = rank * width
    yslab *= multiplier[:, y0 : y0 + width, :]
    yield ctx.charge(field_cost(m) * (1.0 / nranks))

    # Inverse path: ifft z, transpose back, ifft 2-D.
    yslab = np.fft.ifft(yslab, axis=2)
    yield ctx.charge(fft_1d_cost(m) * (m * width))
    back = [np.ascontiguousarray(yslab[:, :, r * width : (r + 1) * width]) for r in range(nranks)]
    received = yield from alltoall(ctx, back)
    slab = np.concatenate(received, axis=1)  # (m, m, width)
    slab = np.fft.ifft2(slab, axes=(0, 1)).real
    yield ctx.charge(fft_1d_cost(m) * (2 * m * width))

    # Make the potential global (the paper's final all-gather).
    slabs = yield from allgather(ctx, slab)
    return np.concatenate(slabs, axis=2)


def parallel_electric_field(ctx, grid: Grid3D, phi: np.ndarray):
    """Slab-parallel field evaluation: each rank differences only its own
    z-slab of the (already global) potential, then the slabs are
    all-gathered — matching the paper's budgets, where the grid phases add
    *communication*, not duplication redundancy.
    """
    m = grid.m
    nranks = ctx.nranks
    z0, z1 = slab_bounds(m, nranks, ctx.rank)
    slab = np.empty((3, m, m, z1 - z0))
    for axis in range(3):
        diff = (
            np.roll(phi, -1, axis=axis) - np.roll(phi, 1, axis=axis)
        ) / (2.0 * grid.spacing)
        slab[axis] = -diff[:, :, z0:z1]
    yield ctx.charge(field_cost(m) * (1.0 / nranks))
    slabs = yield from allgather(ctx, slab)
    return np.concatenate(slabs, axis=3)
