"""Time integration for the particle simulations.

Both Appendix B codes advance particles with an explicit scheme; we use
kick-drift-kick leapfrog, the standard symplectic choice for gravity
(second order, time-reversible, bounded energy error), exposed in a split
form so the parallel codes can interleave the force evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["leapfrog_step", "kick", "drift"]


def kick(velocities: np.ndarray, accelerations: np.ndarray, dt: float) -> np.ndarray:
    """Half-step velocity update ``v + a * dt`` (returns a new array)."""
    return velocities + accelerations * dt


def drift(positions: np.ndarray, velocities: np.ndarray, dt: float) -> np.ndarray:
    """Position update ``x + v * dt`` (returns a new array)."""
    return positions + velocities * dt


def leapfrog_step(
    positions: np.ndarray,
    velocities: np.ndarray,
    accelerations: np.ndarray,
    dt: float,
    evaluate_forces,
) -> tuple:
    """One kick-drift-kick step.

    Parameters
    ----------
    positions, velocities, accelerations:
        Current state (accelerations at the current positions).
    dt:
        Time step.
    evaluate_forces:
        Callback ``positions -> accelerations`` at the drifted positions.

    Returns
    -------
    (positions, velocities, accelerations)
        The advanced state.
    """
    if dt <= 0:
        raise ConfigurationError(f"dt must be positive, got {dt}")
    half_kicked = kick(velocities, accelerations, dt / 2.0)
    new_positions = drift(positions, half_kicked, dt)
    new_accelerations = evaluate_forces(new_positions)
    new_velocities = kick(half_kicked, new_accelerations, dt / 2.0)
    return new_positions, new_velocities, new_accelerations
