"""Barnes-Hut N-body simulation (Appendix B's astrophysical application).

Sequential API: :func:`build_tree` -> :func:`tree_forces` (or
:func:`direct_forces`), wrapped by :class:`NBodySimulation`.
Partitioning: :func:`costzones_partition` / :func:`orb_partition`.
Parallel API: :func:`run_parallel_nbody` with the manager-worker or
replicated worker-worker model on a simulated machine.
"""

from repro.nbody.diagnostics import (
    TreeStats,
    interaction_histogram,
    radial_profile,
    tree_statistics,
    virial_ratio,
)
from repro.nbody.force import (
    ForceResult,
    direct_forces,
    force_op_cost,
    tree_build_op_cost,
    tree_forces,
)
from repro.nbody.integrator import drift, kick, leapfrog_step
from repro.nbody.parallel import (
    ParallelNBodyOutcome,
    manager_worker_program,
    replicated_program,
    run_parallel_nbody,
)
from repro.nbody.partition import costzones_partition, orb_partition, partition_balance
from repro.nbody.simulation import NBodySimulation, StepStats
from repro.nbody.tree import BarnesHutTree, build_tree

__all__ = [
    "BarnesHutTree",
    "build_tree",
    "ForceResult",
    "tree_forces",
    "direct_forces",
    "force_op_cost",
    "tree_build_op_cost",
    "leapfrog_step",
    "kick",
    "drift",
    "costzones_partition",
    "orb_partition",
    "partition_balance",
    "NBodySimulation",
    "StepStats",
    "ParallelNBodyOutcome",
    "manager_worker_program",
    "replicated_program",
    "run_parallel_nbody",
    "TreeStats",
    "tree_statistics",
    "interaction_histogram",
    "radial_profile",
    "virial_ratio",
]
