"""Gravitational force evaluation: Barnes-Hut walk and direct summation.

The tree walk implements the paper's recursive acceptance test — "if the
cell's center of mass is far enough away from the particle, the entire
subtree is approximated by a single particle at the cell's center of
mass; otherwise the cell is opened" — with the standard Barnes-Hut
opening criterion ``s / d < theta`` (``s`` cell side, ``d`` particle-COM
distance).

The walk is *batched*: instead of one particle at a time, whole index
batches descend the tree together, splitting at each cell into the
accepted subset (monopole applied vectorized) and the rest (pushed to the
cell's children).  The arithmetic is identical to the per-particle
recursion; only the loop structure differs, which keeps Python overhead
at O(cells) instead of O(N log N).

Every evaluation returns per-particle *interaction counts* — the quantity
costzones partitioning balances on, and the basis of the machine-model
cost charging.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.nbody.tree import BarnesHutTree
from repro.wavelet.cost import OpCount

__all__ = [
    "ForceResult",
    "tree_forces",
    "direct_forces",
    "force_op_cost",
    "tree_build_op_cost",
]

# Effective operation charges per interaction, calibrated (together with the
# Paragon CPU rates) against Appendix B Table 1's serial N-body times.  The
# mix is deliberately integer-dominated: the paper measured ~60% integer
# operations in N-body (tree construction and traversal), and it is that
# dominance that produces the order-of-magnitude i860 -> Alpha speedup of
# Tables 1-2.
_FLOPS_PER_INTERACTION = 6.0
_INTOPS_PER_INTERACTION = 95.0
_MEMOPS_PER_INTERACTION = 5.0
_BUILD_INTOPS_PER_BODY_LEVEL = 12.0


@dataclass
class ForceResult:
    """Accelerations plus the work statistics of the evaluation."""

    accelerations: np.ndarray
    interactions: np.ndarray  # per-particle interaction counts
    potential: float  # total potential energy (pairwise, direct only if exact)

    @property
    def total_interactions(self) -> int:
        """Sum of all particle-cell and particle-particle interactions."""
        return int(self.interactions.sum())


def _monopole(dpos: np.ndarray, mass, softening: float) -> np.ndarray:
    """Acceleration contributions ``G=1``: ``m * r / (|r|^2 + eps^2)^{3/2}``.

    ``dpos`` is (k, dim) displacement source-minus-target; ``mass`` scalar
    or (k,) array.
    """
    r2 = (dpos**2).sum(axis=1) + softening**2
    inv = r2**-1.5
    return (np.asarray(mass) * inv)[:, None] * dpos


def _quadrupole_acceleration(
    dpos: np.ndarray, quadrupole: np.ndarray, softening: float
) -> np.ndarray:
    """Quadrupole correction to the monopole acceleration.

    With ``r`` the field-point-to-source vector (``dpos = -r``) and the
    traceless tensor ``Q`` about the source's center of mass, the
    potential term ``-(r^T Q r)/(2 r^5)`` contributes

        ``a = Q r / r^5 - (5/2) (r^T Q r) r / r^7``

    expressed below in terms of ``dpos``.
    """
    r2 = (dpos**2).sum(axis=1) + softening**2
    inv5 = r2**-2.5
    inv7 = r2**-3.5
    q_d = dpos @ quadrupole  # = -Q r
    dqd = (dpos * q_d).sum(axis=1)  # = r^T Q r
    return -q_d * inv5[:, None] + 2.5 * dqd[:, None] * dpos * inv7[:, None]


def tree_forces(
    tree: BarnesHutTree,
    positions: np.ndarray,
    masses: np.ndarray,
    *,
    theta: float = 0.6,
    softening: float = 1e-3,
    targets: np.ndarray | None = None,
) -> ForceResult:
    """Barnes-Hut accelerations for ``targets`` (default: all particles).

    Parameters
    ----------
    tree:
        Tree built over the *same* particle set (positions/masses).
    theta:
        Opening angle; smaller is more accurate and more expensive.
    softening:
        Plummer softening length.
    targets:
        Optional index array restricting evaluation (what a worker's
        costzone owns in the parallel code).
    """
    if theta <= 0:
        raise ConfigurationError(f"theta must be positive, got {theta}")
    positions = np.asarray(positions, dtype=np.float64)
    n = positions.shape[0]
    if targets is None:
        targets = np.arange(n)
    else:
        targets = np.asarray(targets, dtype=np.int64)

    acc = np.zeros((n, tree.dim))
    interactions = np.zeros(n, dtype=np.int64)

    stack = [(0, targets)]
    while stack:
        cell, idx = stack.pop()
        if idx.size == 0:
            continue
        if tree.is_leaf(cell):
            start = tree.leaf_start[cell]
            bodies = tree.order[start : start + tree.leaf_count[cell]]
            if bodies.size == 0:
                continue
            # Direct particle-particle within the leaf, excluding self.
            dpos = positions[bodies][None, :, :] - positions[idx][:, None, :]
            r2 = (dpos**2).sum(axis=2) + softening**2
            self_pair = idx[:, None] == bodies[None, :]
            inv = np.where(self_pair, 0.0, r2**-1.5)
            contrib = (masses[bodies][None, :] * inv)[:, :, None] * dpos
            np.add.at(acc, idx, contrib.sum(axis=1))
            np.add.at(interactions, idx, (~self_pair).sum(axis=1))
            continue

        dpos = tree.com[cell][None, :] - positions[idx]
        dist = np.sqrt((dpos**2).sum(axis=1))
        size = 2.0 * tree.half_width[cell]
        accept = size < theta * dist
        far = idx[accept]
        if far.size:
            contribution = _monopole(dpos[accept], tree.mass[cell], softening)
            if tree.quadrupole is not None:
                contribution = contribution + _quadrupole_acceleration(
                    dpos[accept], tree.quadrupole[cell], softening
                )
            np.add.at(acc, far, contribution)
            np.add.at(interactions, far, 1)
        near = idx[~accept]
        if near.size:
            for child in tree.children[cell]:
                if child >= 0:
                    stack.append((int(child), near))

    return ForceResult(
        accelerations=acc[targets],
        interactions=interactions[targets],
        potential=float("nan"),  # tree walk does not produce an exact potential
    )


def direct_forces(
    positions: np.ndarray,
    masses: np.ndarray,
    *,
    softening: float = 1e-3,
) -> ForceResult:
    """Exact O(N^2) pairwise accelerations (the naive baseline Appendix B
    notes is only viable below ~10,000 particles) plus the exact softened
    potential energy."""
    positions = np.asarray(positions, dtype=np.float64)
    masses = np.asarray(masses, dtype=np.float64)
    n = positions.shape[0]
    dpos = positions[None, :, :] - positions[:, None, :]
    r2 = (dpos**2).sum(axis=2) + softening**2
    np.fill_diagonal(r2, np.inf)
    inv = r2**-1.5
    acc = ((masses[None, :] * inv)[:, :, None] * dpos).sum(axis=1)
    inv_r = 1.0 / np.sqrt(r2)
    potential = -0.5 * float((masses[:, None] * masses[None, :] * inv_r).sum())
    return ForceResult(
        accelerations=acc,
        interactions=np.full(n, n - 1, dtype=np.int64),
        potential=potential,
    )


def force_op_cost(total_interactions: int) -> OpCount:
    """Machine-model cost of evaluating ``total_interactions`` interactions."""
    return OpCount(
        flops=total_interactions * _FLOPS_PER_INTERACTION,
        intops=total_interactions * _INTOPS_PER_INTERACTION,
        memops=total_interactions * _MEMOPS_PER_INTERACTION,
    )


def tree_build_op_cost(n: int, depth: int) -> OpCount:
    """Machine-model cost of building a tree over ``n`` bodies of the given
    depth (integer-dominated, per the paper's instruction-mix data)."""
    per_body = _BUILD_INTOPS_PER_BODY_LEVEL * max(1, depth)
    return OpCount(flops=0.0, intops=n * per_body, memops=n * per_body * 0.4)
