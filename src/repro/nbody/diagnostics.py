"""Diagnostics for Barnes-Hut simulations.

Utilities downstream users need to understand a run: tree shape
statistics (what the manager builds and broadcasts each step), the
interaction-count distribution (what costzones balances on), radial
density profiles (cluster structure), and the virial ratio (equilibrium
check for Plummer-type initial conditions).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.particles import ParticleSet
from repro.errors import ConfigurationError
from repro.nbody.force import direct_forces
from repro.nbody.tree import BarnesHutTree

__all__ = ["TreeStats", "tree_statistics", "interaction_histogram", "radial_profile", "virial_ratio"]


@dataclass(frozen=True)
class TreeStats:
    """Structural summary of a Barnes-Hut tree."""

    cells: int
    leaves: int
    internal: int
    depth: int
    max_leaf_occupancy: int
    mean_leaf_occupancy: float
    cells_per_body: float
    broadcast_bytes: int


def tree_statistics(tree: BarnesHutTree) -> TreeStats:
    """Summarize a tree's shape (the per-step payload of the
    manager-worker code)."""
    leaf_mask = tree.leaf_start >= 0
    leaves = int(leaf_mask.sum())
    occupied = tree.leaf_count[leaf_mask]
    nonempty = occupied[occupied > 0]
    return TreeStats(
        cells=tree.ncells,
        leaves=leaves,
        internal=tree.ncells - leaves,
        depth=tree.depth(),
        max_leaf_occupancy=int(occupied.max()) if occupied.size else 0,
        mean_leaf_occupancy=float(nonempty.mean()) if nonempty.size else 0.0,
        cells_per_body=tree.ncells / max(1, tree.n),
        broadcast_bytes=tree.serialized_nbytes(),
    )


def interaction_histogram(interactions: np.ndarray, bins: int = 10) -> tuple:
    """Histogram of per-particle interaction counts.

    Returns ``(edges, counts)``; a long upper tail is what makes naive
    equal-count partitioning unbalanced and costzones necessary.
    """
    interactions = np.asarray(interactions, dtype=np.float64)
    if interactions.size == 0:
        raise ConfigurationError("no interactions to histogram")
    counts, edges = np.histogram(interactions, bins=bins)
    return edges, counts


def radial_profile(particles: ParticleSet, bins: int = 20, center=None) -> tuple:
    """Mass density vs radius about ``center`` (default: center of mass).

    Returns ``(radii, density)`` with ``radii`` the bin centers and
    ``density`` the enclosed mass per shell volume (area in 2-D).
    """
    if bins < 1:
        raise ConfigurationError(f"bins must be >= 1, got {bins}")
    center = particles.center_of_mass() if center is None else np.asarray(center)
    offsets = particles.positions - center
    radii = np.linalg.norm(offsets, axis=1)
    edges = np.linspace(0.0, float(radii.max()) * 1.0001 + 1e-12, bins + 1)
    density = np.zeros(bins)
    dim = particles.dim
    for i in range(bins):
        mask = (radii >= edges[i]) & (radii < edges[i + 1])
        mass = particles.masses[mask].sum()
        if dim == 2:
            volume = np.pi * (edges[i + 1] ** 2 - edges[i] ** 2)
        else:
            volume = 4.0 / 3.0 * np.pi * (edges[i + 1] ** 3 - edges[i] ** 3)
        density[i] = mass / volume if volume > 0 else 0.0
    centers = 0.5 * (edges[:-1] + edges[1:])
    return centers, density


def virial_ratio(particles: ParticleSet, softening: float = 1e-3) -> float:
    """``-2 T / U``: 1.0 for a system in virial equilibrium.

    Uses exact direct summation for the potential, so it is an O(N^2)
    diagnostic intended for moderate N.
    """
    potential = direct_forces(
        particles.positions, particles.masses, softening=softening
    ).potential
    if potential >= 0:
        raise ConfigurationError("potential energy must be negative for a bound system")
    return -2.0 * particles.kinetic_energy() / potential
