"""Parallel Barnes-Hut N-body: the manager-worker formulation of Appendix B.

Per time step (exactly the paper's structure):

1. The **manager** (rank 0) builds the Barnes-Hut tree sequentially and
   broadcasts it — with positions, masses, and the previous step's
   per-particle costs — to every node.
2. Every node determines its own **costzone** from the broadcast tree
   (this is the paper's "unique redundancy": domain-decomposition work
   each processor performs to find its share).
3. Each node walks the replicated tree for only its zone's particles
   ("the original serial code for force evaluation may be used completely
   unchanged"), advances them, and sends the updates back to the manager.
4. The manager merges the updates and the next step begins.

A **replicated worker-worker** variant is also provided: every rank
builds the tree itself (duplication redundancy) so the broadcast
disappears — the §5.3 trade of communication for redundancy.

The manager participates as a worker for its own zone, and the body
payload matches the paper's 56-byte 2-D body struct in spirit (positions,
velocities, mass, cost).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.particles import ParticleSet
from repro.errors import ConfigurationError
from repro.machines import tags
from repro.machines.api import bcast
from repro.machines.engine import Machine, RunResult
from repro.nbody.force import force_op_cost, tree_build_op_cost, tree_forces
from repro.nbody.partition import costzones_partition, orb_partition
from repro.nbody.tree import BarnesHutTree, build_tree

__all__ = ["ParallelNBodyOutcome", "manager_worker_program", "replicated_program", "run_parallel_nbody"]

_TAG_UPDATE = tags.NBODY_UPDATE

_BYTES_PER_BODY = 56  # the paper's 2-D body struct size


@dataclass
class ParallelNBodyOutcome:
    """Result of a parallel N-body run."""

    run: RunResult
    particles: ParticleSet
    interactions_per_step: list


def _partition(tree, positions, costs, nranks, method):
    if method == "costzones":
        return costzones_partition(tree, costs, nranks)
    if method == "orb":
        return orb_partition(positions, costs, nranks)
    raise ConfigurationError(f"unknown partition method {method!r}")


def _zone_step(ctx, tree, positions, velocities, masses, zone, costs, dt, theta, softening):
    """Worker-side force evaluation and update for one costzone.

    Returns the updated (positions, velocities, interactions) for the zone
    after charging the machine-model cost of the real work performed.
    """
    result = tree_forces(
        tree, positions, masses, theta=theta, softening=softening, targets=zone
    )
    yield ctx.charge(force_op_cost(result.total_interactions))
    # Symplectic (semi-implicit) Euler keeps the per-step state exchange to
    # positions and velocities only.
    new_vel = velocities[zone] + result.accelerations * dt
    new_pos = positions[zone] + new_vel * dt
    yield ctx.compute(flops=4 * zone.size * positions.shape[1])
    return new_pos, new_vel, result.interactions


def _force_round(
    ctx, positions, masses, costs, *, leaf_capacity, partition, theta, softening,
    multipole="monopole",
):
    """One manager-coordinated force evaluation over all particles.

    The manager builds and broadcasts the tree; every rank derives its
    costzone and evaluates its share; the manager assembles the full
    acceleration array.  Returns ``(accelerations, new_costs)`` on rank 0
    and ``(None, None)`` elsewhere.
    """
    nranks = ctx.nranks
    rank = ctx.rank
    n = masses.shape[0]

    if rank == 0:
        tree = build_tree(positions, masses, leaf_capacity=leaf_capacity, multipole=multipole)
        yield ctx.charge(tree_build_op_cost(n, tree.depth()))
        payload = (tree.arrays(), positions, costs, tree.dim)
    else:
        payload = None
    payload = yield from bcast(ctx, payload, root=0)
    tree_arrays, positions, costs, dim = payload
    tree = BarnesHutTree.from_arrays(dim, tree_arrays)

    zones = _partition(tree, positions, costs, nranks, partition)
    yield ctx.compute(intops=2 * n, redundant=True)
    zone = zones[rank]

    result = tree_forces(
        tree, positions, masses, theta=theta, softening=softening, targets=zone
    )
    yield ctx.charge(force_op_cost(result.total_interactions))

    if rank == 0:
        accelerations = np.zeros_like(positions)
        new_costs = np.ones(n)
        accelerations[zone] = result.accelerations
        new_costs[zone] = np.maximum(result.interactions, 1)
        for src in range(1, nranks):
            upd_zone, upd_acc, upd_int = yield ctx.recv(src, tag=_TAG_UPDATE)
            accelerations[upd_zone] = upd_acc
            new_costs[upd_zone] = np.maximum(upd_int, 1)
        return accelerations, new_costs
    yield ctx.send(0, (zone, result.accelerations, result.interactions), tag=_TAG_UPDATE)
    return None, None


def manager_worker_program(
    ctx,
    particles: ParticleSet,
    steps: int,
    *,
    dt: float = 0.01,
    theta: float = 0.6,
    softening: float = 1e-3,
    leaf_capacity: int = 1,
    partition: str = "costzones",
    integrator: str = "euler",
    multipole: str = "monopole",
    checkpoint_interval: int = 0,
    restore=None,
):
    """Rank program for the manager-worker N-body code.

    ``integrator`` selects ``"euler"`` (semi-implicit, the paper's
    worker-updates-its-particles flow) or ``"leapfrog"`` (kick-drift-kick;
    matches :class:`~repro.nbody.simulation.NBodySimulation` exactly, at
    the price of manager-side kick bookkeeping).

    ``checkpoint_interval > 0`` (euler only) writes a coordinated
    checkpoint every that-many steps.  The manager's state is the whole
    simulation (positions, velocities, costs, interaction counts); the
    workers are stateless between steps — everything they need is
    re-broadcast — so their checkpoint is just the step counter.
    ``restore`` is the per-rank state list from a
    :class:`~repro.errors.RankCrashError`.
    """
    if integrator == "leapfrog":
        if checkpoint_interval > 0 or restore is not None:
            raise ConfigurationError(
                "checkpointing is only supported for the 'euler' integrator"
            )
        result = yield from _leapfrog_manager_worker(
            ctx,
            particles,
            steps,
            dt=dt,
            theta=theta,
            softening=softening,
            leaf_capacity=leaf_capacity,
            partition=partition,
            multipole=multipole,
        )
        return result
    if integrator != "euler":
        raise ConfigurationError(
            f"unknown integrator {integrator!r}; use 'euler' or 'leapfrog'"
        )
    nranks = ctx.nranks
    rank = ctx.rank
    masses = particles.masses.copy()
    n = masses.shape[0]
    dim = particles.positions.shape[1]
    yield ctx.set_resident_memory(n * _BYTES_PER_BODY if rank == 0 else 0)

    if restore is not None:
        if rank == 0:
            start_step, positions, velocities, costs, interactions_per_step = (
                restore[0]
            )
            positions = np.asarray(positions, dtype=np.float64)
            velocities = np.asarray(velocities, dtype=np.float64)
            costs = np.asarray(costs, dtype=np.float64)
            interactions_per_step = list(interactions_per_step)
        else:
            (start_step,) = restore[rank]
            positions = velocities = None
            costs = np.ones(n)
            interactions_per_step = []
    else:
        start_step = 0
        positions = particles.positions.copy() if rank == 0 else None
        velocities = particles.velocities.copy() if rank == 0 else None
        costs = np.ones(n)
        interactions_per_step = []

    for _step in range(start_step, steps):
        # Phase 1: sequential tree build at the manager.
        if rank == 0:
            tree = build_tree(
                positions, masses, leaf_capacity=leaf_capacity, multipole=multipole
            )
            yield ctx.charge(tree_build_op_cost(n, tree.depth()))
            payload = (tree.arrays(), positions, velocities, costs)
        else:
            payload = None
        # Phase 2: broadcast the tree and particle state.
        payload = yield from bcast(ctx, payload, root=0)
        tree_arrays, positions, velocities, costs = payload
        tree = BarnesHutTree.from_arrays(dim, tree_arrays)
        if rank != 0:
            yield ctx.set_resident_memory(tree.serialized_nbytes() + n * _BYTES_PER_BODY)

        # Phase 3: every node derives its own zone (unique redundancy).
        zones = _partition(tree, positions, costs, nranks, partition)
        yield ctx.compute(intops=2 * n, redundant=True)
        zone = zones[rank]

        # Phase 4: local force evaluation and update.
        new_pos, new_vel, zone_inter = yield from _zone_step(
            ctx, tree, positions, velocities, masses, zone, costs, dt, theta, softening
        )

        # Phase 5: workers return updates; the manager merges.
        if rank == 0:
            positions = positions.copy()
            velocities = velocities.copy()
            new_costs = np.ones(n)
            positions[zone] = new_pos
            velocities[zone] = new_vel
            new_costs[zone] = np.maximum(zone_inter, 1)
            for src in range(1, nranks):
                upd_zone, upd_pos, upd_vel, upd_int = yield ctx.recv(src, tag=_TAG_UPDATE)
                positions[upd_zone] = upd_pos
                velocities[upd_zone] = upd_vel
                new_costs[upd_zone] = np.maximum(upd_int, 1)
            costs = new_costs
            interactions_per_step.append(int(costs.sum()))
        else:
            yield ctx.send(0, (zone, new_pos, new_vel, zone_inter), tag=_TAG_UPDATE)

        if checkpoint_interval > 0 and (_step + 1) % checkpoint_interval == 0:
            if rank == 0:
                yield ctx.checkpoint(
                    (_step + 1, positions, velocities, costs, interactions_per_step)
                )
            else:
                yield ctx.checkpoint((_step + 1,))

    if rank == 0:
        return {
            "positions": positions,
            "velocities": velocities,
            "interactions_per_step": interactions_per_step,
        }
    return None


def _leapfrog_manager_worker(
    ctx,
    particles: ParticleSet,
    steps: int,
    *,
    dt: float,
    theta: float,
    softening: float,
    leaf_capacity: int,
    partition: str,
    multipole: str = "monopole",
):
    """Kick-drift-kick variant: force rounds at the drifted positions,
    manager-side kicks.  Matches the sequential leapfrog simulation
    bit-for-bit."""
    rank = ctx.rank
    masses = particles.masses.copy()
    n = masses.shape[0]
    yield ctx.set_resident_memory(n * _BYTES_PER_BODY if rank == 0 else 0)

    positions = particles.positions.copy() if rank == 0 else None
    velocities = particles.velocities.copy() if rank == 0 else None
    costs = np.ones(n) if rank == 0 else None
    interactions_per_step = []

    kwargs = dict(
        leaf_capacity=leaf_capacity,
        partition=partition,
        theta=theta,
        softening=softening,
        multipole=multipole,
    )
    accelerations, costs = yield from _force_round(ctx, positions, masses, costs, **kwargs)
    for _step in range(steps):
        if rank == 0:
            half_kicked = velocities + accelerations * (dt / 2.0)
            positions = positions + half_kicked * dt
            yield ctx.compute(flops=4 * n * positions.shape[1])
        accelerations, costs = yield from _force_round(
            ctx, positions, masses, costs, **kwargs
        )
        if rank == 0:
            velocities = half_kicked + accelerations * (dt / 2.0)
            yield ctx.compute(flops=2 * n * positions.shape[1])
            interactions_per_step.append(int(costs.sum()))

    if rank == 0:
        return {
            "positions": positions,
            "velocities": velocities,
            "interactions_per_step": interactions_per_step,
        }
    return None


def replicated_program(
    ctx,
    particles: ParticleSet,
    steps: int,
    *,
    dt: float = 0.01,
    theta: float = 0.6,
    softening: float = 1e-3,
    leaf_capacity: int = 1,
    partition: str = "costzones",
    multipole: str = "monopole",
):
    """Worker-worker variant: every rank rebuilds the tree (duplication
    redundancy) and the per-step exchange is an all-gather of zone updates
    — communication traded for redundancy, per §5.3."""
    from repro.machines.api import allgather

    nranks = ctx.nranks
    rank = ctx.rank
    masses = particles.masses.copy()
    n = masses.shape[0]
    positions = particles.positions.copy()
    velocities = particles.velocities.copy()
    costs = np.ones(n)
    yield ctx.set_resident_memory(n * _BYTES_PER_BODY)
    interactions_per_step = []

    for _step in range(steps):
        # Duplicated tree build on every rank: redundancy, not useful work.
        tree = build_tree(
            positions, masses, leaf_capacity=leaf_capacity, multipole=multipole
        )
        yield ctx.charge(tree_build_op_cost(n, tree.depth()), redundant=rank != 0)
        zones = _partition(tree, positions, costs, nranks, partition)
        yield ctx.compute(intops=2 * n, redundant=True)
        zone = zones[rank]

        new_pos, new_vel, zone_inter = yield from _zone_step(
            ctx, tree, positions, velocities, masses, zone, costs, dt, theta, softening
        )

        updates = yield from allgather(ctx, (zone, new_pos, new_vel, zone_inter))
        new_costs = np.ones(n)
        for upd_zone, upd_pos, upd_vel, upd_int in updates:
            positions[upd_zone] = upd_pos
            velocities[upd_zone] = upd_vel
            new_costs[upd_zone] = np.maximum(upd_int, 1)
        costs = new_costs
        interactions_per_step.append(int(costs.sum()))

    if rank == 0:
        return {
            "positions": positions,
            "velocities": velocities,
            "interactions_per_step": interactions_per_step,
        }
    return None


def run_parallel_nbody(
    machine: Machine,
    particles: ParticleSet,
    steps: int,
    *,
    model: str = "manager_worker",
    record_trace: bool = False,
    **kwargs,
) -> ParallelNBodyOutcome:
    """Run the parallel N-body simulation on a simulated machine.

    ``model`` selects ``"manager_worker"`` (the paper's) or
    ``"replicated"``.  ``record_trace`` enables engine event tracing on
    the returned run (timeline rendering, causality analysis).  Remaining
    keyword arguments are forwarded to the rank program (``dt``,
    ``theta``, ``softening``, ``leaf_capacity``, ``partition``).

    Thin wrapper over the runtime layer: builds a
    :class:`~repro.runtime.spec.JobSpec` for the registered ``nbody``
    program and runs it through :func:`repro.runtime.execute`.
    """
    from repro.runtime import JobSpec, RunOptions, execute

    checkpoint_interval = int(kwargs.pop("checkpoint_interval", 0))
    spec = JobSpec(
        program="nbody",
        params={"particles": particles, "steps": steps, "model": model, **kwargs},
        options=RunOptions(
            record_trace=record_trace, checkpoint_interval=checkpoint_interval
        ),
    )
    return execute(machine, spec).outcome
