"""Workload partitioning: Costzones and Orthogonal Recursive Bisection.

Costzones (Singh et al., the paper's choice) exploits the insight that the
tree already encodes the spatial distribution: each particle carries the
interaction count it incurred in the *previous* time step, and the tree's
in-order particle traversal is split into ``P`` contiguous zones of equal
cumulative cost.  ORB is implemented as the costlier baseline the paper
compares against.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.nbody.tree import BarnesHutTree

__all__ = ["costzones_partition", "orb_partition", "partition_balance"]


def costzones_partition(
    tree: BarnesHutTree, costs: np.ndarray, nranks: int
) -> list:
    """Split the tree's in-order particle sequence into ``nranks`` zones of
    near-equal cumulative cost.

    Parameters
    ----------
    tree:
        The current step's Barnes-Hut tree (its ``order`` array *is* the
        in-order traversal).
    costs:
        Per-particle cost, indexed by particle id — the previous step's
        interaction counts (use ones on the first step).
    nranks:
        Number of zones.

    Returns
    -------
    list of numpy.ndarray
        ``zones[r]`` is the particle-id array owned by rank ``r``; zones
        are contiguous in tree order and cover every particle exactly once.
    """
    if nranks < 1:
        raise ConfigurationError(f"nranks must be >= 1, got {nranks}")
    costs = np.asarray(costs, dtype=np.float64)
    if costs.shape != (tree.n,):
        raise ConfigurationError(
            f"costs shape {costs.shape} does not match {tree.n} particles"
        )
    ordered_costs = costs[tree.order]
    cumulative = np.cumsum(ordered_costs)
    total = cumulative[-1]
    if total <= 0:
        # Degenerate: fall back to equal counts.
        boundaries = [
            (tree.n * r) // nranks for r in range(nranks + 1)
        ]
    else:
        targets = total * np.arange(1, nranks) / nranks
        cuts = np.searchsorted(cumulative, targets, side="left")
        boundaries = [0] + [int(c) + 1 for c in cuts] + [tree.n]
        # Monotonic repair for degenerate cost spikes.
        for i in range(1, len(boundaries)):
            boundaries[i] = min(max(boundaries[i], boundaries[i - 1]), tree.n)
        boundaries[-1] = tree.n
    return [
        tree.order[boundaries[r] : boundaries[r + 1]].copy() for r in range(nranks)
    ]


def orb_partition(positions: np.ndarray, costs: np.ndarray, nranks: int) -> list:
    """Orthogonal Recursive Bisection: recursively split space along the
    widest axis at the cost-weighted median.

    Requires ``nranks`` to be a power of two (the classic formulation).
    """
    if nranks < 1 or (nranks & (nranks - 1)) != 0:
        raise ConfigurationError(f"ORB needs a power-of-two rank count, got {nranks}")
    positions = np.asarray(positions, dtype=np.float64)
    costs = np.asarray(costs, dtype=np.float64)
    if costs.shape != (positions.shape[0],):
        raise ConfigurationError("costs must have one entry per particle")

    def bisect(indices: np.ndarray, parts: int) -> list:
        if parts == 1:
            return [indices]
        pos = positions[indices]
        spans = pos.max(axis=0) - pos.min(axis=0) if indices.size else np.zeros(1)
        axis = int(np.argmax(spans))
        order = indices[np.argsort(pos[:, axis], kind="stable")]
        cum = np.cumsum(costs[order])
        half = cum[-1] / 2.0 if cum.size else 0.0
        cut = int(np.searchsorted(cum, half)) + 1
        cut = min(max(cut, 1), indices.size - 1) if indices.size > 1 else 0
        return bisect(order[:cut], parts // 2) + bisect(order[cut:], parts // 2)

    return bisect(np.arange(positions.shape[0]), nranks)


def partition_balance(zones: list, costs: np.ndarray) -> float:
    """Load-balance quality: max zone cost / mean zone cost (1.0 = perfect)."""
    costs = np.asarray(costs, dtype=np.float64)
    loads = np.array([costs[z].sum() for z in zones])
    mean = loads.mean()
    if mean <= 0:
        return 1.0
    return float(loads.max() / mean)
