"""Sequential Barnes-Hut simulation driver.

Runs the paper's per-time-step phase structure — build tree, upward pass
(inside :func:`build_tree`), compute forces, update particles — and keeps
the per-step statistics (interaction counts, tree shape, energies) that
the parallel code and machine cost models consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.particles import ParticleSet
from repro.errors import ConfigurationError
from repro.nbody.force import direct_forces, tree_forces
from repro.nbody.integrator import leapfrog_step
from repro.nbody.tree import BarnesHutTree, build_tree

__all__ = ["StepStats", "NBodySimulation"]


@dataclass
class StepStats:
    """Per-step bookkeeping used by partitioning and cost charging."""

    step: int
    total_interactions: int
    interactions: np.ndarray
    tree_cells: int
    tree_depth: int
    kinetic_energy: float


@dataclass
class NBodySimulation:
    """Sequential Barnes-Hut N-body integrator.

    Parameters
    ----------
    particles:
        Initial conditions (mutated in place as the simulation advances).
    dt:
        Leapfrog step size.
    theta:
        Opening angle.
    softening:
        Plummer softening.
    leaf_capacity:
        Tree terminal-cell capacity.
    """

    particles: ParticleSet
    dt: float = 0.01
    theta: float = 0.6
    softening: float = 1e-3
    leaf_capacity: int = 1
    multipole: str = "monopole"
    history: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.dt <= 0:
            raise ConfigurationError(f"dt must be positive, got {self.dt}")
        self._accelerations = None
        self._step = 0
        self.last_tree: BarnesHutTree | None = None
        self.last_interactions = np.ones(self.particles.n)

    def _forces(self, positions: np.ndarray):
        tree = build_tree(
            positions,
            self.particles.masses,
            leaf_capacity=self.leaf_capacity,
            multipole=self.multipole,
        )
        result = tree_forces(
            tree,
            positions,
            self.particles.masses,
            theta=self.theta,
            softening=self.softening,
        )
        self.last_tree = tree
        self.last_interactions = result.interactions
        return result

    def step(self) -> StepStats:
        """Advance one leapfrog step; returns the step's statistics."""
        ps = self.particles
        if self._accelerations is None:
            self._accelerations = self._forces(ps.positions).accelerations

        def evaluate(positions):
            return self._forces(positions).accelerations

        ps.positions, ps.velocities, self._accelerations = leapfrog_step(
            ps.positions, ps.velocities, self._accelerations, self.dt, evaluate
        )
        self._step += 1
        stats = StepStats(
            step=self._step,
            total_interactions=int(self.last_interactions.sum()),
            interactions=self.last_interactions,
            tree_cells=self.last_tree.ncells,
            tree_depth=self.last_tree.depth(),
            kinetic_energy=ps.kinetic_energy(),
        )
        self.history.append(stats)
        return stats

    def run(self, steps: int) -> list:
        """Advance ``steps`` steps, returning their statistics."""
        return [self.step() for _ in range(steps)]

    def energy(self) -> float:
        """Exact total energy via direct summation (O(N^2); diagnostics)."""
        result = direct_forces(
            self.particles.positions, self.particles.masses, softening=self.softening
        )
        return self.particles.kinetic_energy() + result.potential
