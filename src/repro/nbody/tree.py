"""Barnes-Hut tree construction (Appendix B, Section 2.2).

The tree follows the paper's three construction properties:

1. the root cell encloses all of the bodies,
2. no terminal cell contains more than ``leaf_capacity`` bodies,
3. any cell with ``leaf_capacity`` or fewer bodies is a terminal cell.

The implementation is array-based (the paper likewise flattens the tree
into body and cell arrays): cells are stored in struct-of-arrays form so
the force walk can run vectorized acceptance tests over whole particle
batches per cell, and centers of mass are computed by the standard upward
pass.

Works in 2-D (quadtree — the paper's galaxy simulations are 2-D with a
56-byte body struct) and 3-D (octree).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["BarnesHutTree", "build_tree"]


@dataclass
class BarnesHutTree:
    """Flattened Barnes-Hut tree.

    Cell ``0`` is the root.  ``children[c, q]`` is the child cell id in
    quadrant/octant ``q`` or ``-1``.  Leaves own the contiguous slice
    ``order[leaf_start[c]:leaf_start[c]+leaf_count[c]]`` of particle
    indices (``order`` is the tree's in-order particle permutation, which
    is exactly what costzones partitioning traverses).
    """

    dim: int
    center: np.ndarray  # (ncells, dim) geometric centers
    half_width: np.ndarray  # (ncells,)
    mass: np.ndarray  # (ncells,) total mass
    com: np.ndarray  # (ncells, dim) center of mass
    children: np.ndarray  # (ncells, 2**dim) child ids or -1
    leaf_start: np.ndarray  # (ncells,) slice start into `order` (-1 internal)
    leaf_count: np.ndarray  # (ncells,) bodies in leaf (0 for internal)
    order: np.ndarray  # (n,) in-order particle permutation
    body_count: np.ndarray  # (ncells,) bodies under each cell
    quadrupole: np.ndarray = None  # (ncells, dim, dim) traceless tensors, optional

    @property
    def ncells(self) -> int:
        """Number of cells (internal + leaf)."""
        return self.center.shape[0]

    @property
    def n(self) -> int:
        """Number of bodies in the tree."""
        return self.order.shape[0]

    def is_leaf(self, cell: int) -> bool:
        """True if ``cell`` is terminal."""
        return self.leaf_start[cell] >= 0

    def depth(self) -> int:
        """Maximum root-to-leaf depth (root = 0)."""
        depths = np.zeros(self.ncells, dtype=np.int64)
        best = 0
        for cell in range(self.ncells):
            for child in self.children[cell]:
                if child >= 0:
                    depths[child] = depths[cell] + 1
                    best = max(best, int(depths[child]))
        return best

    def serialized_nbytes(self) -> int:
        """Wire size of the tree (what the manager broadcasts each step)."""
        total = (
            self.center.nbytes
            + self.half_width.nbytes
            + self.mass.nbytes
            + self.com.nbytes
            + self.children.nbytes
            + self.leaf_start.nbytes
            + self.leaf_count.nbytes
            + self.order.nbytes
            + self.body_count.nbytes
        )
        if self.quadrupole is not None:
            total += self.quadrupole.nbytes
        return total

    def arrays(self) -> tuple:
        """The payload tuple shipped over the simulated network."""
        return (
            self.center,
            self.half_width,
            self.mass,
            self.com,
            self.children,
            self.leaf_start,
            self.leaf_count,
            self.order,
            self.body_count,
            self.quadrupole,
        )

    @classmethod
    def from_arrays(cls, dim: int, arrays: tuple) -> "BarnesHutTree":
        """Rebuild a tree from :meth:`arrays` output (receiver side)."""
        return cls(dim, *arrays)


class _Builder:
    def __init__(self, positions: np.ndarray, masses: np.ndarray, leaf_capacity: int):
        self.pos = positions
        self.masses = masses
        self.leaf_capacity = leaf_capacity
        self.dim = positions.shape[1]
        self.nquad = 2**self.dim
        self.center: list = []
        self.half: list = []
        self.children: list = []
        self.leaf_start: list = []
        self.leaf_count: list = []
        self.body_count: list = []
        self.order = np.empty(positions.shape[0], dtype=np.int64)
        self.order_fill = 0

    def new_cell(self, center: np.ndarray, half: float, nbodies: int) -> int:
        cell = len(self.center)
        self.center.append(center)
        self.half.append(half)
        self.children.append([-1] * self.nquad)
        self.leaf_start.append(-1)
        self.leaf_count.append(0)
        self.body_count.append(nbodies)
        return cell

    def build(self, indices: np.ndarray, center: np.ndarray, half: float) -> int:
        cell = self.new_cell(center, half, indices.size)
        if indices.size <= self.leaf_capacity:
            self.leaf_start[cell] = self.order_fill
            self.leaf_count[cell] = indices.size
            self.order[self.order_fill : self.order_fill + indices.size] = indices
            self.order_fill += indices.size
            return cell
        pos = self.pos[indices]
        # Quadrant code: bit d set when coordinate d >= center[d].
        codes = np.zeros(indices.size, dtype=np.int64)
        for d in range(self.dim):
            codes |= (pos[:, d] >= center[d]).astype(np.int64) << d
        for quadrant in range(self.nquad):
            selected = indices[codes == quadrant]
            if selected.size == 0:
                continue
            offset = np.array(
                [half / 2 if (quadrant >> d) & 1 else -half / 2 for d in range(self.dim)]
            )
            child = self.build(selected, center + offset, half / 2)
            self.children[cell][quadrant] = child
        return cell


def build_tree(
    positions: np.ndarray,
    masses: np.ndarray,
    *,
    leaf_capacity: int = 1,
    padding: float = 1e-9,
    multipole: str = "monopole",
) -> BarnesHutTree:
    """Build the Barnes-Hut tree over a particle set.

    Parameters
    ----------
    positions, masses:
        ``(n, dim)`` and ``(n,)`` arrays (dim 2 or 3).
    leaf_capacity:
        Maximum bodies per terminal cell (the paper's ``m``; its example
        tree uses ``m = 1``).
    padding:
        Relative enlargement of the root cell so boundary particles fall
        strictly inside.
    multipole:
        ``"monopole"`` (the paper's baseline) or ``"quadrupole"`` — the
        "(perhaps with quadrupole and higher moments)" refinement: cells
        additionally carry traceless quadrupole tensors about their
        centers of mass (the dipole vanishes there), which
        :func:`~repro.nbody.force.tree_forces` then uses for a more
        accurate far-field at the same opening angle.
    """
    positions = np.asarray(positions, dtype=np.float64)
    masses = np.asarray(masses, dtype=np.float64)
    if positions.ndim != 2 or positions.shape[1] not in (2, 3):
        raise ConfigurationError("positions must be (n, 2) or (n, 3)")
    if masses.shape != (positions.shape[0],):
        raise ConfigurationError("masses must be (n,)")
    if positions.shape[0] < 1:
        raise ConfigurationError("tree needs at least one body")
    if leaf_capacity < 1:
        raise ConfigurationError(f"leaf_capacity must be >= 1, got {leaf_capacity}")

    lo = positions.min(axis=0)
    hi = positions.max(axis=0)
    span = float((hi - lo).max())
    half = span / 2 * (1 + padding) + padding
    root_center = (lo + hi) / 2.0

    builder = _Builder(positions, masses, leaf_capacity)
    builder.build(np.arange(positions.shape[0]), root_center, half)

    ncells = len(builder.center)
    children = np.array(builder.children, dtype=np.int64)
    tree = BarnesHutTree(
        dim=positions.shape[1],
        center=np.array(builder.center),
        half_width=np.array(builder.half, dtype=np.float64),
        mass=np.zeros(ncells),
        com=np.zeros((ncells, positions.shape[1])),
        children=children,
        leaf_start=np.array(builder.leaf_start, dtype=np.int64),
        leaf_count=np.array(builder.leaf_count, dtype=np.int64),
        order=builder.order,
        body_count=np.array(builder.body_count, dtype=np.int64),
    )
    if multipole not in ("monopole", "quadrupole"):
        raise ConfigurationError(
            f"unknown multipole order {multipole!r}; use 'monopole' or 'quadrupole'"
        )
    _upward_pass(tree, positions, masses)
    if multipole == "quadrupole":
        _quadrupole_pass(tree, positions, masses)
    return tree


def _point_quadrupole(offsets: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Traceless quadrupole ``sum_i w_i (3 d_i d_i^T - |d_i|^2 I)``."""
    dim = offsets.shape[1]
    outer = np.einsum("i,ij,ik->jk", weights, offsets, offsets)
    trace = float((weights * (offsets**2).sum(axis=1)).sum())
    return 3.0 * outer - trace * np.eye(dim)


def _quadrupole_pass(tree: BarnesHutTree, positions: np.ndarray, masses: np.ndarray) -> None:
    """Accumulate traceless quadrupole tensors about each cell's center of
    mass, children before parents (parallel-axis recombination)."""
    dim = tree.dim
    quadrupole = np.zeros((tree.ncells, dim, dim))
    for cell in range(tree.ncells - 1, -1, -1):
        if tree.is_leaf(cell):
            start = tree.leaf_start[cell]
            idx = tree.order[start : start + tree.leaf_count[cell]]
            if idx.size:
                offsets = positions[idx] - tree.com[cell]
                quadrupole[cell] = _point_quadrupole(offsets, masses[idx])
        else:
            for child in tree.children[cell]:
                if child >= 0:
                    shift = (tree.com[child] - tree.com[cell])[None, :]
                    quadrupole[cell] = (
                        quadrupole[cell]
                        + quadrupole[child]
                        + _point_quadrupole(shift, np.array([tree.mass[child]]))
                    )
    tree.quadrupole = quadrupole


def _upward_pass(tree: BarnesHutTree, positions: np.ndarray, masses: np.ndarray) -> None:
    """Compute cell masses and centers of mass, children before parents.

    Cells are created parent-before-child, so a reverse index sweep visits
    every child before its parent.
    """
    weighted = np.zeros_like(tree.com)
    for cell in range(tree.ncells - 1, -1, -1):
        if tree.is_leaf(cell):
            start = tree.leaf_start[cell]
            count = tree.leaf_count[cell]
            idx = tree.order[start : start + count]
            tree.mass[cell] = masses[idx].sum()
            weighted[cell] = (masses[idx, None] * positions[idx]).sum(axis=0)
        else:
            for child in tree.children[cell]:
                if child >= 0:
                    tree.mass[cell] += tree.mass[child]
                    weighted[cell] += weighted[child]
        if tree.mass[cell] > 0:
            tree.com[cell] = weighted[cell] / tree.mass[cell]
        else:
            tree.com[cell] = tree.center[cell]
