"""Exception hierarchy shared across the :mod:`repro` subsystems.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything produced by this package with a single ``except`` clause
without swallowing unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """A machine spec, topology, or algorithm parameter is invalid."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event engine detected an inconsistent state."""


class DeadlockError(SimulationError):
    """All live ranks are blocked on receives that can never be satisfied."""

    def __init__(self, waiting: dict) -> None:
        self.waiting = dict(waiting)
        detail = ", ".join(
            f"rank {rank} waiting on {want}" for rank, want in sorted(self.waiting.items())
        )
        super().__init__(f"deadlock: {detail}")


class CommunicationError(SimulationError):
    """A message-passing call was used incorrectly (bad rank, tag, size)."""


class RecvTimeoutError(CommunicationError, TimeoutError):
    """A ``ctx.recv(..., timeout_s=...)`` expired before a matching message
    arrived.  Thrown *into* the rank program at the blocked ``yield`` so it
    can recover (retransmit, fall back, abort) instead of deadlocking."""

    def __init__(self, rank: int, src: int, tag: int, timeout_s: float, at_s: float) -> None:
        self.rank = rank
        self.src = src
        self.tag = tag
        self.timeout_s = timeout_s
        self.at_s = at_s
        super().__init__(
            f"rank {rank}: recv(src={src}, tag={tag}) timed out after "
            f"{timeout_s:g}s at virtual t={at_s:.6f}s"
        )


class TransportError(CommunicationError):
    """The reliable transport exhausted its retransmission budget without
    getting a message (or its acknowledgement) through."""


class RankCrashError(SimulationError):
    """A rank hit its fault-plan crash time (fail-stop model).

    The whole run aborts at the crash instant; the error carries what a
    recovery driver needs: which rank died, when, and the newest *globally
    committed* checkpoint (the largest index every rank had written to
    stable storage before the crash).
    """

    def __init__(self, rank: int, at_s: float, checkpoint_index: int = -1,
                 checkpoint_states: list | None = None) -> None:
        self.rank = rank
        self.at_s = at_s
        self.checkpoint_index = checkpoint_index
        self.checkpoint_states = checkpoint_states
        where = (
            f"no committed checkpoint" if checkpoint_index < 0
            else f"committed checkpoint #{checkpoint_index}"
        )
        super().__init__(
            f"rank {rank} crashed at virtual t={at_s:.6f}s ({where})"
        )


class DecompositionError(ReproError, ValueError):
    """A domain decomposition cannot be constructed for the given shape."""


class TraceError(ReproError, ValueError):
    """A workload trace is malformed (unknown opcode, bad operands)."""


class CausalityError(ReproError, ValueError):
    """An engine trace cannot support the requested causal analysis
    (missing trace, unknown event indices, unmatched message linkage)."""
