"""Exception hierarchy shared across the :mod:`repro` subsystems.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything produced by this package with a single ``except`` clause
without swallowing unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """A machine spec, topology, or algorithm parameter is invalid."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event engine detected an inconsistent state."""


class DeadlockError(SimulationError):
    """All live ranks are blocked on receives that can never be satisfied."""

    def __init__(self, waiting: dict) -> None:
        self.waiting = dict(waiting)
        detail = ", ".join(
            f"rank {rank} waiting on {want}" for rank, want in sorted(self.waiting.items())
        )
        super().__init__(f"deadlock: {detail}")


class CommunicationError(SimulationError):
    """A message-passing call was used incorrectly (bad rank, tag, size)."""


class DecompositionError(ReproError, ValueError):
    """A domain decomposition cannot be constructed for the given shape."""


class TraceError(ReproError, ValueError):
    """A workload trace is malformed (unknown opcode, bad operands)."""


class CausalityError(ReproError, ValueError):
    """An engine trace cannot support the requested causal analysis
    (missing trace, unknown event indices, unmatched message linkage)."""
