"""Closed-loop load autopilot: sweep offered load, find the knee.

The open-loop service answers "what happens at this load"; the autopilot
answers "how much load can this machine take".  It estimates the
machine's work capacity from the mix's measured service times, sweeps a
grid of offered-load multipliers (``rho = offered work / capacity``),
runs one seeded service simulation per point with common random numbers
(same seeds at every point, so curves differ only through load), and
detects the *saturation knee* on the turnaround curve:

* **Curvature** (primary): the point of maximum distance above the
  chord joining the first and last sweep points of the normalized mean
  turnaround curve — the "kneedle" construction, which finds the
  inflection where queueing delay starts compounding.
* **Backlog divergence** (guard): the first point whose horizon-end
  backlog exceeds ``diverged_backlog`` or whose shed rate exceeds
  ``diverged_shed`` is flagged unstable; a curvature knee past the first
  unstable point is clamped to it.

The report is schema-versioned (``repro.service.loadsweep/v1``) and
checked by :func:`validate_loadsweep`.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.service.accounting import Accounting
from repro.service.admission import AdmissionController
from repro.service.arrivals import parse_arrival_spec
from repro.service.loop import Service, ServiceConfig
from repro.service.workloads import Mix

__all__ = [
    "LOADSWEEP_SCHEMA",
    "DEFAULT_MULTIPLIERS",
    "estimate_capacity_rate",
    "run_load_sweep",
    "detect_knee",
    "validate_loadsweep",
]

LOADSWEEP_SCHEMA = "repro.service.loadsweep/v1"

#: Default offered-load grid (fractions of estimated capacity).
DEFAULT_MULTIPLIERS = (0.25, 0.5, 0.75, 1.0, 1.5, 2.0)


def mean_work_per_arrival(mix: Mix, oracle) -> float:
    """Expected node-seconds of service demanded by one arrival.

    Weighted over the tenant shares and each tenant's work blend; a
    pipeline arrival costs the sum of its stage jobs.
    """
    total_weight = sum(tenant.weight for tenant in mix.tenants)
    expected = 0.0
    for tenant in mix.tenants:
        blend_weight = sum(weight for _, weight in tenant.work)
        for work_name, weight in tenant.work:
            if mix.is_pipeline(work_name):
                cost = 0.0
                for stage in mix.pipelines[work_name].stages:
                    for template_name in stage:
                        template = mix.templates[template_name]
                        cost += template.partition_size * oracle.service_s(template)
            else:
                template = mix.templates[work_name]
                cost = template.partition_size * oracle.service_s(template)
            expected += (tenant.weight / total_weight) * (weight / blend_weight) * cost
    if expected <= 0.0:
        raise ConfigurationError("mix has zero expected work per arrival")
    return expected


def estimate_capacity_rate(mix: Mix, oracle, usable_nodes: int) -> float:
    """Arrival rate (per virtual second) that offers exactly the
    machine's node-seconds: ``usable_nodes / E[work per arrival]``.

    Real capacity is lower (partition rounding, fair-share fragmentation,
    pipeline serialization), which is precisely what the sweep measures.
    """
    return usable_nodes / mean_work_per_arrival(mix, oracle)


def detect_knee(
    multipliers: list,
    turnarounds: list,
    unstable: list,
) -> dict:
    """Knee of the (load, turnaround) curve.

    Returns ``{"detected", "index", "offered_load", "method"}``; the
    kneedle chord construction needs at least three points and a
    non-flat curve, otherwise the first unstable point (backlog
    divergence) is the fallback, and failing both the knee is reported
    undetected at the last point.
    """
    n = len(multipliers)
    if n != len(turnarounds) or n != len(unstable):
        raise ConfigurationError("knee inputs must be parallel lists")
    first_unstable = next((i for i, bad in enumerate(unstable) if bad), None)
    if n >= 3:
        x0, x1 = multipliers[0], multipliers[-1]
        y0, y1 = turnarounds[0], turnarounds[-1]
        span_x = x1 - x0
        span_y = y1 - y0
        if span_x > 0.0 and span_y > 1e-12:
            best_index, best_distance = None, 0.0
            for i in range(1, n - 1):
                xn = (multipliers[i] - x0) / span_x
                yn = (turnarounds[i] - y0) / span_y
                distance = xn - yn  # height above the normalized chord
                if distance > best_distance:
                    best_index, best_distance = i, distance
            if best_index is not None and best_distance > 0.01:
                index = best_index
                method = "kneedle-chord"
                if first_unstable is not None and first_unstable < index:
                    index = first_unstable
                    method = "backlog-divergence"
                return {
                    "detected": True,
                    "index": index,
                    "offered_load": multipliers[index],
                    "method": method,
                }
    if first_unstable is not None:
        return {
            "detected": True,
            "index": first_unstable,
            "offered_load": multipliers[first_unstable],
            "method": "backlog-divergence",
        }
    return {
        "detected": False,
        "index": n - 1,
        "offered_load": multipliers[-1],
        "method": "none",
    }


def run_load_sweep(
    usable_nodes: int,
    mix: Mix,
    oracle,
    *,
    multipliers=DEFAULT_MULTIPLIERS,
    arrival_kind: str = "poisson",
    seed: int = 0,
    horizon_s: float = 60.0,
    policy_name: str = "fair",
    admission: AdmissionController | None = None,
    config: ServiceConfig | None = None,
    diverged_backlog: int = 8,
    diverged_shed: float = 0.05,
) -> dict:
    """Sweep offered load and emit the ``repro.service.loadsweep/v1`` report."""
    from repro.runtime.policy import make_policy

    multipliers = [float(m) for m in multipliers]
    if len(multipliers) < 2:
        raise ConfigurationError("load sweep needs at least 2 points")
    if sorted(multipliers) != multipliers:
        raise ConfigurationError("sweep multipliers must be ascending")
    base_rate = estimate_capacity_rate(mix, oracle, usable_nodes)
    loop_config = config if config is not None else ServiceConfig(horizon_s=horizon_s)

    points = []
    for i, multiplier in enumerate(multipliers):
        rate = multiplier * base_rate
        # Common random numbers: every point replays the same arrival and
        # mix seeds, so the curves differ only through the offered rate.
        arrivals = parse_arrival_spec(arrival_kind, seed, rate_s=rate)
        service = Service(
            usable_nodes,
            mix,
            arrivals,
            oracle,
            policy=make_policy(policy_name, weights=mix.tenant_weights()),
            admission=admission,
            accounting=Accounting(),
            config=loop_config,
            seed=seed,
        )
        report = service.run()
        snapshot = report.snapshot
        points.append(
            {
                "offered_load": multiplier,
                "rate_s": rate,
                "offered": snapshot["jobs"]["offered"],
                "completed": snapshot["jobs"]["completed"],
                "shed_rate": snapshot["jobs"]["shed_rate"],
                "p50_turnaround_s": snapshot["latency"]["turnaround"]["p50"],
                "p99_turnaround_s": snapshot["latency"]["turnaround"]["p99"],
                "mean_turnaround_s": snapshot["latency"]["turnaround"]["mean"],
                "utilization": snapshot["utilization"],
                "backlog_end": snapshot["backlog"]["end"],
                "backlog_peak": snapshot["backlog"]["peak"],
                "unstable": bool(
                    snapshot["backlog"]["end"] > diverged_backlog
                    or snapshot["jobs"]["shed_rate"] > diverged_shed
                ),
            }
        )

    knee = detect_knee(
        [p["offered_load"] for p in points],
        [p["mean_turnaround_s"] for p in points],
        [p["unstable"] for p in points],
    )
    knee["rate_s"] = points[knee["index"]]["rate_s"]
    knee["p99_turnaround_s"] = points[knee["index"]]["p99_turnaround_s"]

    doc = {
        "schema": LOADSWEEP_SCHEMA,
        "config": {
            "mix": mix.name,
            "arrival": arrival_kind,
            "policy": policy_name,
            "seed": seed,
            "horizon_s": loop_config.horizon_s,
            "usable_nodes": usable_nodes,
            "capacity_rate_s": base_rate,
            "diverged_backlog": diverged_backlog,
            "diverged_shed": diverged_shed,
        },
        "points": points,
        "knee": knee,
    }
    validate_loadsweep(doc)
    return doc


_POINT_FIELDS = (
    "offered_load",
    "rate_s",
    "offered",
    "completed",
    "shed_rate",
    "p50_turnaround_s",
    "p99_turnaround_s",
    "mean_turnaround_s",
    "utilization",
    "backlog_end",
    "backlog_peak",
    "unstable",
)


def validate_loadsweep(doc) -> None:
    """Structural + consistency check of a load-sweep report.

    Raises :class:`~repro.errors.ConfigurationError` on any violation.
    """
    if not isinstance(doc, dict):
        raise ConfigurationError(f"loadsweep must be a dict, got {type(doc)}")
    if doc.get("schema") != LOADSWEEP_SCHEMA:
        raise ConfigurationError(
            f"unknown loadsweep schema {doc.get('schema')!r}; "
            f"expected {LOADSWEEP_SCHEMA!r}"
        )
    if not isinstance(doc.get("config"), dict):
        raise ConfigurationError("loadsweep is missing its 'config' dict")
    points = doc.get("points")
    if not isinstance(points, list) or len(points) < 2:
        raise ConfigurationError("loadsweep needs at least 2 points")
    last_load = None
    for i, point in enumerate(points):
        if not isinstance(point, dict) or set(point) != set(_POINT_FIELDS):
            raise ConfigurationError(f"point {i} fields mismatch {_POINT_FIELDS}")
        if point["offered_load"] <= 0.0 or point["rate_s"] <= 0.0:
            raise ConfigurationError(f"point {i} has non-positive load")
        if last_load is not None and point["offered_load"] <= last_load:
            raise ConfigurationError("points must ascend in offered_load")
        last_load = point["offered_load"]
        if not 0.0 <= point["shed_rate"] <= 1.0:
            raise ConfigurationError(f"point {i} shed_rate outside [0, 1]")
        if not 0.0 <= point["utilization"] <= 1.0 + 1e-9:
            raise ConfigurationError(f"point {i} utilization outside [0, 1]")
        if point["p50_turnaround_s"] > point["p99_turnaround_s"] + 1e-12:
            raise ConfigurationError(f"point {i} p50 exceeds p99")
    knee = doc.get("knee")
    if not isinstance(knee, dict):
        raise ConfigurationError("loadsweep is missing its 'knee' dict")
    for key in ("detected", "index", "offered_load", "method"):
        if key not in knee:
            raise ConfigurationError(f"knee is missing {key!r}")
    if not 0 <= knee["index"] < len(points):
        raise ConfigurationError("knee index out of range")
    if knee["offered_load"] != points[knee["index"]]["offered_load"]:
        raise ConfigurationError("knee offered_load disagrees with its point")
