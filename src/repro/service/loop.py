"""The always-on service event loop (open-loop, virtual time).

:class:`Service` wires the subsystem together: a seeded
:class:`~repro.service.arrivals.ArrivalProcess` emits request instants;
a seeded mix draw assigns each to a tenant and a work shape; the
:class:`~repro.service.admission.AdmissionController` sheds excess at
the door; admitted small requests coalesce in per-(tenant, template)
*batches* (one fused submission, one partition allocation, many images);
submissions queue under a :class:`~repro.runtime.policy.QueuePolicy`
over the same buddy :class:`~repro.machines.partition.PartitionManager`
the batch scheduler uses; and every completion, shed, and backlog sample
lands in the :class:`~repro.service.accounting.Accounting` sink.

Service times come from a workload oracle
(:class:`~repro.service.workloads.EngineOracle` measures each template
once through the engine and caches the virtual seconds), so the loop is
a discrete-event simulation over exact per-template engine timings: a
heap of (time, seq, event) tuples processed in deterministic order.
Everything — arrivals, mix draws, admission, queueing, completion order —
is a pure function of (mix, arrival process, seed, config).
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.machines.network import FullyConnected
from repro.machines.partition import PartitionManager
from repro.runtime.policy import QueuePolicy, WeightedFairShare
from repro.service.accounting import Accounting, ItemRecord
from repro.service.admission import AdmissionController
from repro.service.arrivals import ArrivalProcess
from repro.service.workloads import JobTemplate, Mix

__all__ = ["ServiceConfig", "Service", "ServiceReport"]

# Event kinds, in tie-break order at equal virtual time: finishing jobs
# free partitions before new arrivals are admitted, closing batches see
# every item that arrived at or before the close instant, and the
# scheduling pass after SAMPLE events observes a settled queue.
_FINISH, _ARRIVAL, _BATCH_CLOSE, _SAMPLE = 0, 1, 2, 3


@dataclass(frozen=True)
class ServiceConfig:
    """Loop knobs (all virtual seconds).

    ``horizon_s`` bounds the arrival stream; admitted work drains to
    completion afterwards (the backlog at the horizon is reported as
    ``backlog.end``).  ``batch_window_s``/``max_batch`` control
    coalescing of batchable templates; ``sample_interval_s`` paces
    backlog depth samples.
    """

    horizon_s: float = 60.0
    batch_window_s: float = 0.25
    max_batch: int = 8
    sample_interval_s: float = 1.0

    def __post_init__(self):
        if self.horizon_s <= 0.0:
            raise ConfigurationError(f"horizon_s must be > 0, got {self.horizon_s}")
        if self.batch_window_s < 0.0:
            raise ConfigurationError("batch_window_s must be >= 0")
        if self.max_batch < 1:
            raise ConfigurationError("max_batch must be >= 1")
        if self.sample_interval_s <= 0.0:
            raise ConfigurationError("sample_interval_s must be > 0")


@dataclass
class _Submission:
    """One schedulable unit: a batch of items sharing a template."""

    job_id: int
    tenant: str
    priority: int
    template: JobTemplate
    arrivals: list  # per-item arrival instants
    service_s: float
    submit_s: float
    pipeline: tuple | None = None  # (pipeline_instance_id, stage_index)

    @property
    def partition_size(self) -> int:
        return self.template.partition_size

    @property
    def cost(self) -> float:
        """Node-seconds the fair-share policy charges."""
        return self.partition_size * self.service_s


@dataclass
class _PipelineInstance:
    instance_id: int
    name: str
    tenant: str
    priority: int
    arrival_s: float
    stages: tuple
    stage_index: int = 0
    outstanding: int = 0


@dataclass
class ServiceReport:
    """Everything one service run produced."""

    snapshot: dict
    accounting: Accounting
    backlog_end: int
    makespan_s: float

    @property
    def p99_turnaround_s(self) -> float:
        return self.snapshot["latency"]["turnaround"]["p99"]

    @property
    def p50_turnaround_s(self) -> float:
        return self.snapshot["latency"]["turnaround"]["p50"]


class Service:
    """Multi-tenant wavelet service simulation over one machine.

    Parameters
    ----------
    usable_nodes:
        Node pool the buddy allocator space-shares (a power of two; use
        :func:`repro.runtime.machine_template` ``.total_nodes`` for a
        calibrated machine).
    mix / arrivals / oracle:
        The tenant workload mix, the open-loop arrival process, and the
        service-time oracle (``service_s(template) -> float``).
    policy:
        Queue discipline; defaults to
        :class:`~repro.runtime.policy.WeightedFairShare` over the mix's
        tenant weights.
    admission:
        Optional :class:`AdmissionController`; ``None`` admits all.
    seed:
        Seeds the tenant/work mix draws (the arrival process carries its
        own seed).
    """

    def __init__(
        self,
        usable_nodes: int,
        mix: Mix,
        arrivals: ArrivalProcess,
        oracle,
        *,
        policy: QueuePolicy | None = None,
        admission: AdmissionController | None = None,
        accounting: Accounting | None = None,
        config: ServiceConfig | None = None,
        seed: int = 0,
    ) -> None:
        if usable_nodes < 1:
            raise ConfigurationError(f"usable_nodes must be >= 1, got {usable_nodes}")
        # The buddy allocator floors to a power of two; use its view of
        # the pool everywhere (fit checks, utilization denominator).
        self.partitions = PartitionManager(FullyConnected(usable_nodes))
        self.usable_nodes = self.partitions.usable_nodes
        self.mix = mix
        self.arrivals = arrivals
        self.oracle = oracle
        self.policy = (
            policy
            if policy is not None
            else WeightedFairShare(mix.tenant_weights())
        )
        self.admission = admission
        self.accounting = accounting if accounting is not None else Accounting()
        self.config = config if config is not None else ServiceConfig()
        self.seed = seed
        for template in sorted(mix.templates.values(), key=lambda t: t.name):
            if template.partition_size > self.usable_nodes:
                raise ConfigurationError(
                    f"template {template.name!r} needs a "
                    f"{template.partition_size}-node partition; the service "
                    f"machine offers {self.usable_nodes}"
                )
        # -- run state -------------------------------------------------------
        self._events: list = []
        self._seq = 0
        self._pending: list = []
        self._running = 0
        self._open_batches: dict = {}  # (tenant, template) -> [arrival instants]
        self._pipelines: dict = {}
        self._next_job_id = 0
        self._next_pipeline_id = 0
        self._tenant_backlog: dict = {}
        self._makespan_s = 0.0
        self._backlog_end: int | None = None
        self._ran = False

    # -- event plumbing ------------------------------------------------------

    def _push(self, time_s: float, kind: int, payload) -> None:
        heapq.heappush(self._events, (time_s, kind, self._seq, payload))
        self._seq += 1

    def _backlog_depth(self) -> int:
        """Queued submissions plus items waiting in open batches."""
        batched = sum(
            len(items) for _, items in sorted(self._open_batches.items())
        )
        return len(self._pending) + batched

    def _tenant_depth(self, tenant: str) -> int:
        return self._tenant_backlog.get(tenant, 0)

    def _bump_tenant(self, tenant: str, delta: int) -> None:
        self._tenant_backlog[tenant] = self._tenant_depth(tenant) + delta

    # -- the loop ------------------------------------------------------------

    def run(self) -> ServiceReport:
        """Drive arrivals to the horizon, drain, and snapshot the metrics."""
        if self._ran:
            raise ConfigurationError("a Service instance runs exactly once")
        self._ran = True
        config = self.config
        mix_rng = random.Random(self.seed)

        for time_s in self.arrivals.times(config.horizon_s):
            tenant = self.mix.pick_tenant(mix_rng)
            work = self.mix.pick_work(mix_rng, tenant)
            self._push(time_s, _ARRIVAL, (tenant, work))
        self._push(config.sample_interval_s, _SAMPLE, None)

        while self._events:
            time_s, kind, _, payload = heapq.heappop(self._events)
            if self._backlog_end is None and time_s > config.horizon_s:
                # First event past the horizon: the queue state right now
                # is the steady-state backlog the arrivals left behind.
                self._backlog_end = self._backlog_depth()
            if time_s > self._makespan_s:
                self._makespan_s = time_s
            if kind == _ARRIVAL:
                self._handle_arrival(time_s, *payload)
            elif kind == _BATCH_CLOSE:
                self._close_batch(time_s, payload)
            elif kind == _FINISH:
                self._handle_finish(time_s, payload)
            else:  # _SAMPLE
                self._handle_sample(time_s)
            self._schedule_pass(time_s)

        if self._backlog_end is None:
            self._backlog_end = self._backlog_depth()
        if self._pending or self._open_batches:
            raise ConfigurationError(
                "service loop ended with work still queued; this should be "
                "impossible because every admitted submission fits the machine"
            )
        snapshot = self.accounting.snapshot(
            config=self._config_doc(),
            usable_nodes=self.usable_nodes,
            elapsed_s=self._makespan_s,
            backlog_end=self._backlog_end,
        )
        return ServiceReport(
            snapshot=snapshot,
            accounting=self.accounting,
            backlog_end=self._backlog_end,
            makespan_s=self._makespan_s,
        )

    def _config_doc(self) -> dict:
        return {
            "mix": self.mix.name,
            "arrival": self.arrivals.describe(),
            "policy": self.policy.name,
            "admission": (
                self.admission.describe() if self.admission is not None else "open"
            ),
            "usable_nodes": self.usable_nodes,
            "horizon_s": self.config.horizon_s,
            "batch_window_s": self.config.batch_window_s,
            "max_batch": self.config.max_batch,
            "seed": self.seed,
        }

    # -- arrival / batching --------------------------------------------------

    def _handle_arrival(self, time_s: float, tenant, work: str) -> None:
        is_pipeline = self.mix.is_pipeline(work)
        items = (
            sum(len(stage) for stage in self.mix.pipelines[work].stages)
            if is_pipeline
            else 1
        )
        self.accounting.record_offered(items)
        if self.admission is not None:
            rejection = self.admission.admit(
                time_s,
                tenant.name,
                work,
                tenant_backlog=self._tenant_depth(tenant.name),
                total_backlog=self._backlog_depth(),
            )
            if rejection is not None:
                for _ in range(items):
                    self.accounting.record_shed(rejection)
                return
        if is_pipeline:
            self._start_pipeline(time_s, tenant, work)
            return
        template = self.mix.templates[work]
        if template.batchable and self.config.max_batch > 1:
            self._join_batch(time_s, tenant, template)
        else:
            self._submit(
                time_s, tenant.name, tenant.priority, template, [time_s]
            )

    def _join_batch(self, time_s: float, tenant, template: JobTemplate) -> None:
        key = (tenant.name, template.name)
        bucket = self._open_batches.get(key)
        if bucket is None:
            self._open_batches[key] = [time_s]
            self._push(time_s + self.config.batch_window_s, _BATCH_CLOSE, key)
            return
        bucket.append(time_s)
        if len(bucket) >= self.config.max_batch:
            self._close_batch(time_s, key)

    def _close_batch(self, time_s: float, key) -> None:
        bucket = self._open_batches.pop(key, None)
        if bucket is None:
            return  # already flushed by the max-batch trigger
        tenant_name, template_name = key
        template = self.mix.templates[template_name]
        priority = 0
        for tenant in self.mix.tenants:
            if tenant.name == tenant_name:
                priority = tenant.priority
                break
        self._submit(time_s, tenant_name, priority, template, bucket)

    def _start_pipeline(self, time_s: float, tenant, work: str) -> None:
        pipeline = self.mix.pipelines[work]
        instance = _PipelineInstance(
            instance_id=self._next_pipeline_id,
            name=work,
            tenant=tenant.name,
            priority=tenant.priority,
            arrival_s=time_s,
            stages=pipeline.stages,
        )
        self._next_pipeline_id += 1
        self._pipelines[instance.instance_id] = instance
        self._submit_stage(time_s, instance)

    def _submit_stage(self, time_s: float, instance: _PipelineInstance) -> None:
        stage = instance.stages[instance.stage_index]
        instance.outstanding = len(stage)
        for template_name in stage:
            self._submit(
                time_s,
                instance.tenant,
                instance.priority,
                self.mix.templates[template_name],
                [instance.arrival_s],
                pipeline=(instance.instance_id, instance.stage_index),
            )

    def _submit(
        self,
        time_s: float,
        tenant: str,
        priority: int,
        template: JobTemplate,
        arrivals: list,
        *,
        pipeline: tuple | None = None,
    ) -> None:
        service_s = len(arrivals) * self.oracle.service_s(template)
        submission = _Submission(
            job_id=self._next_job_id,
            tenant=tenant,
            priority=priority,
            template=template,
            arrivals=list(arrivals),
            service_s=service_s,
            submit_s=time_s,
            pipeline=pipeline,
        )
        self._next_job_id += 1
        self._pending.append(submission)
        self._bump_tenant(tenant, 1)
        self.accounting.record_submission()
        self.policy.on_submit(submission, time_s)

    # -- scheduling / completion ---------------------------------------------

    def _schedule_pass(self, time_s: float) -> None:
        if not self._pending:
            return
        started = set()
        for submission in self.policy.order(self._pending, time_s):
            try:
                partition = self.partitions.allocate(submission.partition_size)
            except ConfigurationError:
                continue  # blocked; lower-ranked submissions may backfill
            self.policy.on_start(submission, time_s)
            finish_s = time_s + submission.service_s
            self._push(finish_s, _FINISH, (submission, partition, time_s))
            self._running += 1
            started.add(submission.job_id)
        if started:
            self._pending = [
                s for s in self._pending if s.job_id not in started
            ]

    def _handle_finish(self, time_s: float, payload) -> None:
        submission, partition, start_s = payload
        self.partitions.release(partition)
        self._running -= 1
        self._bump_tenant(submission.tenant, -1)
        self.policy.on_finish(submission, time_s)
        self.accounting.record_service(
            submission.partition_size, submission.service_s
        )
        if submission.pipeline is None:
            records = [
                ItemRecord(
                    tenant=submission.tenant,
                    template=submission.template.name,
                    arrival_s=arrival_s,
                    start_s=start_s,
                    finish_s=time_s,
                    batch_size=len(submission.arrivals),
                )
                for arrival_s in submission.arrivals
            ]
            self.accounting.record_items(records)
            return
        instance_id, stage_index = submission.pipeline
        instance = self._pipelines[instance_id]
        self.accounting.record_items(
            [
                ItemRecord(
                    tenant=submission.tenant,
                    template=submission.template.name,
                    arrival_s=submission.submit_s,
                    start_s=start_s,
                    finish_s=time_s,
                )
            ]
        )
        instance.outstanding -= 1
        if instance.outstanding > 0:
            return
        instance.stage_index += 1
        if instance.stage_index < len(instance.stages):
            self._submit_stage(time_s, instance)
        else:
            self.accounting.record_pipeline(
                instance.arrival_s, time_s, instance.tenant
            )
            del self._pipelines[instance_id]

    def _handle_sample(self, time_s: float) -> None:
        self.accounting.record_backlog(time_s, self._backlog_depth())
        next_s = time_s + self.config.sample_interval_s
        if next_s <= self.config.horizon_s:
            self._push(next_s, _SAMPLE, None)
