"""Admission control: per-tenant rate limits, backlog caps, load shedding.

An open-loop service cannot make offered load go away — it can only
decide *where* the excess queues.  Without admission control the backlog
grows without bound past the saturation knee and every tenant's p99
diverges together; with it, traffic beyond a tenant's contract is shed
at the door with a typed rejection the client can act on (retry later,
reduce rate), and the queue depth the scheduler sees stays bounded.

The controller is deterministic in virtual time: token buckets refill as
a pure function of the elapsed virtual interval, and every decision
depends only on (time, tenant, backlog counts).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["Rejection", "REJECTION_REASONS", "AdmissionController", "TokenBucket"]

#: Typed shed reasons, in check order.
REJECTION_REASONS = ("rate-limit", "tenant-backlog", "queue-full")


@dataclass(frozen=True)
class Rejection:
    """One shed request: who was turned away, when, and why."""

    time_s: float
    tenant: str
    work: str
    reason: str

    def describe(self) -> str:
        return f"t={self.time_s:.3f}s {self.tenant}/{self.work}: {self.reason}"


class TokenBucket:
    """Virtual-time token bucket: ``rate_s`` tokens/s, ``burst`` capacity.

    Starts full; :meth:`take` refills lazily from the elapsed virtual
    interval and consumes one token when available.
    """

    def __init__(self, rate_s: float, burst: float) -> None:
        if rate_s <= 0.0 or burst < 1.0:
            raise ConfigurationError(
                f"token bucket needs rate > 0 and burst >= 1, "
                f"got rate={rate_s}, burst={burst}"
            )
        self.rate_s = float(rate_s)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last_s = 0.0

    def take(self, now_s: float) -> bool:
        """Consume one token at virtual time ``now_s`` if available."""
        if now_s > self._last_s:
            self._tokens = min(
                self.burst, self._tokens + (now_s - self._last_s) * self.rate_s
            )
            self._last_s = now_s
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


class AdmissionController:
    """Gate in front of the service queue.

    Parameters
    ----------
    tenant_rate_limits:
        ``{tenant: requests/s}`` token-bucket contracts; tenants absent
        from the map are uncapped.  ``burst_factor`` scales each bucket's
        capacity (seconds' worth of contracted rate).
    tenant_backlog_limit:
        Maximum queued submissions a single tenant may hold (0 = off).
    queue_limit:
        Maximum total queued submissions across tenants (0 = off).

    :meth:`admit` returns ``None`` to accept or a typed
    :class:`Rejection`; checks run in :data:`REJECTION_REASONS` order so
    a rejection's reason is the *first* violated constraint.
    """

    def __init__(
        self,
        *,
        tenant_rate_limits: dict | None = None,
        tenant_backlog_limit: int = 0,
        queue_limit: int = 0,
        burst_factor: float = 2.0,
    ) -> None:
        if tenant_backlog_limit < 0 or queue_limit < 0:
            raise ConfigurationError("backlog/queue limits must be >= 0")
        self.tenant_backlog_limit = int(tenant_backlog_limit)
        self.queue_limit = int(queue_limit)
        self._buckets: dict = {}
        for tenant, rate_s in sorted((tenant_rate_limits or {}).items()):
            self._buckets[tenant] = TokenBucket(
                rate_s, max(1.0, rate_s * burst_factor)
            )

    def admit(
        self,
        now_s: float,
        tenant: str,
        work: str,
        *,
        tenant_backlog: int,
        total_backlog: int,
    ) -> Rejection | None:
        """Accept (``None``) or shed (typed :class:`Rejection`) one request."""
        bucket = self._buckets.get(tenant)
        if bucket is not None and not bucket.take(now_s):
            return Rejection(now_s, tenant, work, "rate-limit")
        if 0 < self.tenant_backlog_limit <= tenant_backlog:
            return Rejection(now_s, tenant, work, "tenant-backlog")
        if 0 < self.queue_limit <= total_backlog:
            return Rejection(now_s, tenant, work, "queue-full")
        return None

    def describe(self) -> str:
        limits = ", ".join(
            f"{tenant}:{bucket.rate_s:g}/s"
            for tenant, bucket in sorted(self._buckets.items())
        )
        return (
            f"admission(rate=[{limits or 'uncapped'}], "
            f"tenant_backlog={self.tenant_backlog_limit or 'off'}, "
            f"queue={self.queue_limit or 'off'})"
        )
