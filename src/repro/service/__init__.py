"""Multi-tenant service simulation layered on :mod:`repro.runtime`.

The paper's batch story ends at "run this decomposition on that
machine"; this package asks the production question — what happens when
*millions* of small requests arrive continuously?  It simulates an
always-on wavelet service in virtual time: seeded open-loop arrival
processes (:mod:`~repro.service.arrivals`), tenant workload mixes with
measured service times (:mod:`~repro.service.workloads`), admission
control (:mod:`~repro.service.admission`), a discrete-event loop over
the buddy partition allocator (:mod:`~repro.service.loop`), steady-state
accounting (:mod:`~repro.service.accounting`), and a closed-loop load
autopilot that finds the saturation knee
(:mod:`~repro.service.autopilot`).

Everything is replay-deterministic: no wall clock, every RNG seeded,
all results pure functions of (mix, arrival process, seed, config).
"""

from repro.service.accounting import (
    SNAPSHOT_SCHEMA,
    Accounting,
    ItemRecord,
    percentile,
    validate_snapshot,
    write_snapshot_json,
)
from repro.service.admission import (
    REJECTION_REASONS,
    AdmissionController,
    Rejection,
    TokenBucket,
)
from repro.service.arrivals import (
    ARRIVAL_KINDS,
    ArrivalProcess,
    DiurnalProcess,
    MMPPProcess,
    PoissonProcess,
    parse_arrival_spec,
)
from repro.service.autopilot import (
    DEFAULT_MULTIPLIERS,
    LOADSWEEP_SCHEMA,
    detect_knee,
    estimate_capacity_rate,
    run_load_sweep,
    validate_loadsweep,
)
from repro.service.loop import Service, ServiceConfig, ServiceReport
from repro.service.workloads import (
    MIX_BUILDERS,
    EngineOracle,
    FixedOracle,
    JobTemplate,
    Mix,
    PipelineTemplate,
    TenantProfile,
    default_mix,
    get_mix,
)

__all__ = [
    # loop
    "Service",
    "ServiceConfig",
    "ServiceReport",
    # arrivals
    "ARRIVAL_KINDS",
    "ArrivalProcess",
    "PoissonProcess",
    "MMPPProcess",
    "DiurnalProcess",
    "parse_arrival_spec",
    # workloads
    "JobTemplate",
    "PipelineTemplate",
    "TenantProfile",
    "Mix",
    "EngineOracle",
    "FixedOracle",
    "default_mix",
    "get_mix",
    "MIX_BUILDERS",
    # admission
    "AdmissionController",
    "Rejection",
    "TokenBucket",
    "REJECTION_REASONS",
    # accounting
    "Accounting",
    "ItemRecord",
    "percentile",
    "SNAPSHOT_SCHEMA",
    "validate_snapshot",
    "write_snapshot_json",
    # autopilot
    "run_load_sweep",
    "detect_knee",
    "estimate_capacity_rate",
    "validate_loadsweep",
    "LOADSWEEP_SCHEMA",
    "DEFAULT_MULTIPLIERS",
]
