"""Tenant workload mixes: job templates, pipelines, and service times.

The service's traffic is described by a :class:`Mix` — a set of tenants,
each submitting a weighted blend of *work*: single :class:`JobTemplate`
requests (small DWT transforms, instruction-mix analytics) and
:class:`PipelineTemplate` DAGs in the style of the multispectral fusion
cluster of PAPERS.md ("Fusion of multispectral satellite imagery using a
cluster of GPUs"): a fan-out of per-band decompositions, a fusion-rule
stage, and an inverse transform, each stage gated on the previous one.

Service times are *measured, not invented*: :class:`EngineOracle` runs
each distinct template once through the :mod:`repro.runtime` executor on
a dedicated machine of the template's rank count and caches the virtual
seconds.  Partition runs are digest-identical to standalone runs of the
same size (pinned by ``tests/test_runtime_scheduler.py``), so the cached
time is exact for every later submission of the same template and the
service loop never has to re-simulate the engine per request — which is
what makes sweeping thousands of arrivals tractable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = [
    "JobTemplate",
    "PipelineTemplate",
    "TenantProfile",
    "Mix",
    "EngineOracle",
    "FixedOracle",
    "default_mix",
    "get_mix",
    "MIX_BUILDERS",
    "next_power_of_two",
]


def next_power_of_two(n: int) -> int:
    power = 1
    while power < n:
        power *= 2
    return power


@dataclass(frozen=True)
class JobTemplate:
    """One reusable request shape a tenant submits.

    ``program`` is a :mod:`repro.runtime` registry name; wavelet
    templates carry image ``size``/``filter_length``/``levels``/
    ``kernel`` (any :func:`repro.wavelet.plan.parse_kernel_spec` spec —
    ``"conv"``, ``"lifting"``, ``"fused"``/``"fused:N"``,
    ``"single-loop"``), workload templates a trace ``scale``/``repeats``.
    ``batchable`` marks small requests the service may coalesce into one
    fused submission (one partition allocation serving many images).
    """

    name: str
    program: str = "wavelet"
    nranks: int = 4
    size: int = 64
    filter_length: int = 4
    levels: int = 2
    kernel: str = "fused"
    scale: float = 0.1
    repeats: int = 1
    collective: str = "rdouble"
    batchable: bool = False

    @property
    def partition_size(self) -> int:
        """Buddy partition the template's rank count occupies."""
        return next_power_of_two(self.nranks)

    def build_spec(self, *, machine=None, tenant: str = "", priority: int = 0):
        """A runnable :class:`~repro.runtime.spec.JobSpec` for one item."""
        from repro.runtime import JobSpec, RunOptions

        if self.program == "wavelet":
            from repro.data import landsat_like_scene
            from repro.wavelet import filter_bank_for_length

            params = {
                "image": landsat_like_scene((self.size, self.size)),
                "bank": filter_bank_for_length(self.filter_length),
                "levels": self.levels,
            }
            options = RunOptions(
                machine=machine,
                nranks=self.nranks,
                kernel=self.kernel,
                collective=self.collective,
            )
        elif self.program == "workload":
            from repro.workload import nas_suite

            params = {"trace": nas_suite(self.scale)[0], "repeats": self.repeats}
            options = RunOptions(
                machine=machine, nranks=self.nranks, collective=self.collective
            )
        else:
            raise ConfigurationError(
                f"template {self.name!r}: program {self.program!r} is not "
                "service-templatable; use 'wavelet' or 'workload'"
            )
        return JobSpec(
            program=self.program,
            params=params,
            options=options,
            name=self.name,
            tenant=tenant,
            priority=priority,
        )


@dataclass(frozen=True)
class PipelineTemplate:
    """A multi-stage DAG of templates: stage *k+1* starts when every job
    of stage *k* has finished (the fusion paper's band-parallel shape)."""

    name: str
    stages: tuple  # tuple of tuples of template names

    def validate(self, templates: dict) -> None:
        if not self.stages:
            raise ConfigurationError(f"pipeline {self.name!r} has no stages")
        for stage in self.stages:
            if not stage:
                raise ConfigurationError(
                    f"pipeline {self.name!r} has an empty stage"
                )
            for template_name in stage:
                if template_name not in templates:
                    raise ConfigurationError(
                        f"pipeline {self.name!r} references unknown "
                        f"template {template_name!r}"
                    )


@dataclass(frozen=True)
class TenantProfile:
    """One tenant: its share of traffic, priority, and work blend.

    ``work`` maps work names to selection weights; names resolve first in
    the mix's templates, then its pipelines.  ``weight`` is the tenant's
    share of arrivals *and* its fair-share queue weight.
    """

    name: str
    weight: float = 1.0
    priority: int = 0
    work: tuple = ()  # tuple of (work_name, weight)

    def __post_init__(self):
        if self.weight <= 0.0:
            raise ConfigurationError(
                f"tenant {self.name!r} weight must be > 0, got {self.weight}"
            )
        if not self.work:
            raise ConfigurationError(f"tenant {self.name!r} has no work blend")


@dataclass(frozen=True)
class Mix:
    """A complete tenant workload mix."""

    name: str
    tenants: tuple
    templates: dict = field(default_factory=dict)
    pipelines: dict = field(default_factory=dict)

    def __post_init__(self):
        if not self.tenants:
            raise ConfigurationError(f"mix {self.name!r} has no tenants")
        for pipeline in sorted(self.pipelines.values(), key=lambda p: p.name):
            pipeline.validate(self.templates)
        for tenant in self.tenants:
            for work_name, weight in tenant.work:
                if weight <= 0.0:
                    raise ConfigurationError(
                        f"tenant {tenant.name!r} work {work_name!r} weight "
                        f"must be > 0"
                    )
                if work_name not in self.templates and work_name not in self.pipelines:
                    raise ConfigurationError(
                        f"tenant {tenant.name!r} references unknown work "
                        f"{work_name!r}"
                    )

    def tenant_weights(self) -> dict:
        """``{tenant: weight}`` for the fair-share policy."""
        return {tenant.name: tenant.weight for tenant in self.tenants}

    def with_collective(self, collective: str) -> "Mix":
        """A copy whose templates run their global reductions under the
        given all-reduce schedule (``serve --collective``).

        The name is validated eagerly; templates whose program has no
        global reduction (wavelet filtering) are left untouched rather
        than poisoned with a knob their validation would reject.
        """
        from dataclasses import replace

        from repro.machines.api import get_allreduce
        from repro.runtime.registry import get_program

        get_allreduce(collective)  # unknown name -> ConfigurationError
        templates = {
            name: (
                replace(template, collective=collective)
                if "collective" in get_program(template.program).supports
                else template
            )
            for name, template in self.templates.items()
        }
        return replace(self, templates=templates)

    def pick_tenant(self, rng) -> TenantProfile:
        """Weighted tenant draw from a seeded ``random.Random``."""
        return _weighted_pick(rng, [(t, t.weight) for t in self.tenants])

    def pick_work(self, rng, tenant: TenantProfile) -> str:
        """Weighted work-name draw for one arrival of ``tenant``."""
        return _weighted_pick(rng, list(tenant.work))

    def is_pipeline(self, work_name: str) -> bool:
        return work_name in self.pipelines

    def template_names(self) -> tuple:
        return tuple(sorted(self.templates))


def _weighted_pick(rng, weighted: list):
    total = sum(weight for _, weight in weighted)
    point = rng.random() * total
    cumulative = 0.0
    for value, weight in weighted:
        cumulative += weight
        if point < cumulative:
            return value
    return weighted[-1][0]


# --------------------------------------------------------------------------
# Service-time oracles
# --------------------------------------------------------------------------


class EngineOracle:
    """Measures each template's service time once through the engine.

    ``service_s(template)`` launches the template's job on a freshly
    built machine of the template's rank count (same spec family the
    scheduler carves partitions from) and caches
    ``Execution.total_virtual_s`` under the template name.
    """

    def __init__(self, machine: str = "paragon", *, protocol: str | None = None) -> None:
        self.machine = machine
        self.protocol = protocol
        self._cache: dict = {}

    def service_s(self, template: JobTemplate) -> float:
        cached = self._cache.get(template.name)
        if cached is not None:
            return cached
        from dataclasses import replace

        from repro.runtime import launch

        spec = template.build_spec(machine=self.machine)
        if self.protocol is not None:
            spec = replace(
                spec, options=spec.options.with_updates(protocol=self.protocol)
            )
        measured = launch(spec).total_virtual_s
        self._cache[template.name] = measured
        return measured


class FixedOracle:
    """Test oracle with prescribed service times (no engine runs)."""

    def __init__(self, times: dict, *, default_s: float | None = None) -> None:
        self.times = dict(times)
        self.default_s = default_s

    def service_s(self, template: JobTemplate) -> float:
        value = self.times.get(template.name, self.default_s)
        if value is None:
            raise ConfigurationError(
                f"FixedOracle has no service time for {template.name!r}"
            )
        return float(value)


# --------------------------------------------------------------------------
# The default tenant mix
# --------------------------------------------------------------------------


def default_mix() -> Mix:
    """Three tenants over five templates and one fusion pipeline.

    * ``interactive`` — high-priority stream of small batchable DWT
      requests (the "millions of users" fast path).
    * ``batch`` — medium DWT jobs plus instruction-mix analytics.
    * ``fusion-lab`` — the multi-stage satellite-fusion pipeline: four
      per-band decompositions fanning into a fusion rule, then an
      inverse transform.
    """
    templates = {
        "dwt-small": JobTemplate(
            name="dwt-small", program="wavelet", nranks=4, size=64,
            filter_length=4, levels=2, kernel="fused", batchable=True,
        ),
        "dwt-medium": JobTemplate(
            name="dwt-medium", program="wavelet", nranks=8, size=128,
            filter_length=4, levels=2, kernel="single-loop",
        ),
        "mix-analytics": JobTemplate(
            name="mix-analytics", program="workload", nranks=8, scale=0.2,
        ),
        "fusion-band": JobTemplate(
            name="fusion-band", program="wavelet", nranks=8, size=128,
            filter_length=4, levels=1, kernel="fused",
        ),
        "fusion-merge": JobTemplate(
            name="fusion-merge", program="workload", nranks=8, scale=0.1,
        ),
        "fusion-inverse": JobTemplate(
            name="fusion-inverse", program="wavelet", nranks=8, size=128,
            filter_length=4, levels=1, kernel="lifting",
        ),
    }
    pipelines = {
        "fusion": PipelineTemplate(
            name="fusion",
            stages=(
                ("fusion-band", "fusion-band", "fusion-band", "fusion-band"),
                ("fusion-merge",),
                ("fusion-inverse",),
            ),
        ),
    }
    tenants = (
        TenantProfile(
            name="interactive", weight=3.0, priority=2,
            work=(("dwt-small", 1.0),),
        ),
        TenantProfile(
            name="batch", weight=1.5, priority=1,
            work=(("dwt-medium", 0.7), ("mix-analytics", 0.3)),
        ),
        TenantProfile(
            name="fusion-lab", weight=0.5, priority=0,
            work=(("fusion", 1.0),),
        ),
    )
    return Mix(
        name="default", tenants=tenants, templates=templates, pipelines=pipelines
    )


MIX_BUILDERS = {"default": default_mix}


def get_mix(name: str) -> Mix:
    """Build a named mix (currently only ``"default"``)."""
    try:
        return MIX_BUILDERS[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown mix {name!r}; available: {sorted(MIX_BUILDERS)}"
        ) from None
