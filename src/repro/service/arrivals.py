"""Open-loop arrival processes for the service simulation.

The paper's machines ran one job at a time on a dedicated partition; a
production wavelet service instead sees an *open-loop* stream of requests
that does not slow down when the machine saturates.  These generators
stand in for that traffic — millions of users reduced to a seeded point
process in virtual time:

``PoissonProcess``
    Memoryless arrivals at a constant rate (exponential interarrivals);
    the M/G/c baseline every queueing result is stated against.
``MMPPProcess``
    A two-state Markov-modulated Poisson process: the stream flips
    between a *burst* phase and an *idle* phase with exponentially
    distributed dwell times, keeping the configured long-run mean rate.
    Burstiness shows up as interarrival CV^2 > 1 and deeper backlog
    excursions at the same offered load.
``DiurnalProcess``
    A nonhomogeneous Poisson process whose rate follows a sinusoidal
    day/night curve (peak-to-trough set by ``amplitude``), sampled by
    Lewis-Shedler thinning against the peak rate.

Replay determinism: every process is a pure function of its constructor
arguments — :meth:`~ArrivalProcess.times` builds a fresh
``random.Random(seed)`` on each call, so iterating twice (or pickling the
config and regenerating elsewhere) yields the identical event stream.
"""

from __future__ import annotations

import math
import random
from typing import Iterator

from repro.errors import ConfigurationError

__all__ = [
    "ArrivalProcess",
    "PoissonProcess",
    "MMPPProcess",
    "DiurnalProcess",
    "parse_arrival_spec",
    "ARRIVAL_KINDS",
]

#: CLI spellings accepted by :func:`parse_arrival_spec`.
ARRIVAL_KINDS = ("poisson", "bursty", "diurnal")


class ArrivalProcess:
    """Seeded point process over virtual time.

    Subclasses implement :meth:`times` (the event stream up to a horizon)
    and :meth:`rate_at` (the instantaneous rate, for introspection and
    load accounting); ``mean_rate_s`` is the long-run average used to
    convert offered-load multipliers into rates.
    """

    kind = "base"

    def __init__(self, rate_s: float, seed: int) -> None:
        if rate_s <= 0.0:
            raise ConfigurationError(f"arrival rate must be > 0/s, got {rate_s}")
        self.rate_s = float(rate_s)
        self.seed = int(seed)

    @property
    def mean_rate_s(self) -> float:
        """Long-run mean arrival rate (events per virtual second)."""
        return self.rate_s

    def times(self, horizon_s: float) -> Iterator[float]:
        """Strictly increasing arrival instants in ``(0, horizon_s]``."""
        raise NotImplementedError

    def rate_at(self, t_s: float) -> float:
        """Instantaneous rate at virtual time ``t_s``."""
        return self.rate_s

    def describe(self) -> str:
        """One-line config summary for reports."""
        return f"{self.kind}(rate={self.rate_s:g}/s, seed={self.seed})"


class PoissonProcess(ArrivalProcess):
    """Homogeneous Poisson arrivals at ``rate_s`` events per second."""

    kind = "poisson"

    def times(self, horizon_s: float) -> Iterator[float]:
        rng = random.Random(self.seed)
        t = 0.0
        while True:
            t += rng.expovariate(self.rate_s)
            if t > horizon_s:
                return
            yield t


class MMPPProcess(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (bursty traffic).

    ``burst`` and ``idle`` are the phase rates as multiples of the mean
    (``burst > 1 > idle >= 0``); dwell times in each phase are
    exponential with means chosen so the long-run rate equals ``rate_s``:
    the burst phase occupies a ``(1 - idle) / (burst - idle)`` fraction
    of one ``cycle_s``-long mean cycle.
    """

    kind = "bursty"

    def __init__(
        self,
        rate_s: float,
        seed: int,
        *,
        burst: float = 4.0,
        idle: float = 0.25,
        cycle_s: float = 10.0,
    ) -> None:
        super().__init__(rate_s, seed)
        if not (burst > 1.0 > idle >= 0.0):
            raise ConfigurationError(
                f"MMPP phases need burst > 1 > idle >= 0, got {burst}/{idle}"
            )
        if cycle_s <= 0.0:
            raise ConfigurationError(f"cycle_s must be > 0, got {cycle_s}")
        self.burst = float(burst)
        self.idle = float(idle)
        self.cycle_s = float(cycle_s)
        self._burst_fraction = (1.0 - idle) / (burst - idle)

    def times(self, horizon_s: float) -> Iterator[float]:
        rng = random.Random(self.seed)
        t = 0.0
        in_burst = True  # start hot; the first dwell draw sets the cadence
        fraction = self._burst_fraction
        phase_end = rng.expovariate(1.0 / (fraction * self.cycle_s))
        while t <= horizon_s:
            rate = self.rate_s * (self.burst if in_burst else self.idle)
            candidate = t + rng.expovariate(rate) if rate > 0.0 else math.inf
            if candidate > phase_end:
                # Exponentials are memoryless, so a draw that crosses the
                # phase boundary is discarded and restarted at the
                # boundary under the new phase's rate — exact, no bias.
                t = phase_end
                in_burst = not in_burst
                fraction = (
                    self._burst_fraction if in_burst else 1.0 - self._burst_fraction
                )
                phase_end += rng.expovariate(1.0 / (fraction * self.cycle_s))
                continue
            t = candidate
            if t > horizon_s:
                return
            yield t

    def rate_at(self, t_s: float) -> float:
        # The phase path is stochastic; report the long-run mean.
        return self.rate_s

    def describe(self) -> str:
        return (
            f"bursty(rate={self.rate_s:g}/s, burst={self.burst:g}x, "
            f"idle={self.idle:g}x, cycle={self.cycle_s:g}s, seed={self.seed})"
        )


class DiurnalProcess(ArrivalProcess):
    """Sinusoidal day/night rate curve, sampled by thinning.

    ``rate(t) = rate_s * (1 + amplitude * sin(2 pi t / period_s))`` —
    candidate events are drawn at the peak rate and accepted with
    probability ``rate(t) / peak`` (Lewis-Shedler), which is exact for
    any bounded rate function and stays replay-deterministic because the
    accept draws come from the same seeded stream.
    """

    kind = "diurnal"

    def __init__(
        self,
        rate_s: float,
        seed: int,
        *,
        amplitude: float = 0.8,
        period_s: float = 60.0,
    ) -> None:
        super().__init__(rate_s, seed)
        if not 0.0 <= amplitude < 1.0:
            raise ConfigurationError(
                f"amplitude must be in [0, 1), got {amplitude}"
            )
        if period_s <= 0.0:
            raise ConfigurationError(f"period_s must be > 0, got {period_s}")
        self.amplitude = float(amplitude)
        self.period_s = float(period_s)

    def rate_at(self, t_s: float) -> float:
        return self.rate_s * (
            1.0 + self.amplitude * math.sin(2.0 * math.pi * t_s / self.period_s)
        )

    def times(self, horizon_s: float) -> Iterator[float]:
        rng = random.Random(self.seed)
        peak = self.rate_s * (1.0 + self.amplitude)
        t = 0.0
        while True:
            t += rng.expovariate(peak)
            if t > horizon_s:
                return
            if rng.random() * peak <= self.rate_at(t):
                yield t

    def describe(self) -> str:
        return (
            f"diurnal(rate={self.rate_s:g}/s, amplitude={self.amplitude:g}, "
            f"period={self.period_s:g}s, seed={self.seed})"
        )


def parse_arrival_spec(spec: str, seed: int, *, rate_s: float | None = None) -> ArrivalProcess:
    """Build a process from a CLI spec: ``KIND`` or ``KIND:RATE``.

    ``KIND`` is one of :data:`ARRIVAL_KINDS` (case-insensitive); the rate
    may come from the spec (``POISSON:2.5``) or the ``rate_s`` keyword —
    the spec wins when both are given.
    """
    kind, _, rate_text = spec.partition(":")
    kind = kind.strip().lower()
    if kind not in ARRIVAL_KINDS:
        raise ConfigurationError(
            f"unknown arrival kind {kind!r}; use one of {ARRIVAL_KINDS}"
        )
    if rate_text.strip():
        try:
            rate_s = float(rate_text)
        except ValueError:
            raise ConfigurationError(
                f"arrival spec {spec!r} rate is not a number"
            ) from None
    if rate_s is None:
        raise ConfigurationError(
            f"arrival spec {spec!r} needs a rate (KIND:RATE) or an explicit rate"
        )
    if kind == "poisson":
        return PoissonProcess(rate_s, seed)
    if kind == "bursty":
        return MMPPProcess(rate_s, seed)
    return DiurnalProcess(rate_s, seed)
