"""Accounting sink and steady-state metrics for the service loop.

Every event the :class:`~repro.service.loop.Service` emits lands here:
offered/shed/completed work items, pipeline completions, and periodic
backlog samples.  :meth:`Accounting.snapshot` reduces the raw records to
the dashboard numbers — p50/p99 queue wait and turnaround, utilization,
backlog depth, shed rate, per-tenant breakdowns — as a schema-versioned
document (``repro.service.snapshot/v1``) that
:func:`validate_snapshot` checks structurally, the same contract the
benchmark harness uses for ``BENCH_wavelet.json``.

Percentiles use the deterministic nearest-rank method (no interpolation)
so pinned-seed tests can assert exact values.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = [
    "SNAPSHOT_SCHEMA",
    "ItemRecord",
    "Accounting",
    "percentile",
    "validate_snapshot",
    "write_snapshot_json",
]

SNAPSHOT_SCHEMA = "repro.service.snapshot/v1"


def percentile(values: list, q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of a non-empty list."""
    if not values:
        raise ConfigurationError("percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = math.ceil(q * len(ordered) / 100.0)
    rank = max(1, min(len(ordered), rank))
    return float(ordered[rank - 1])


def _dist(values: list) -> dict:
    """p50/p99/mean/max summary of a latency sample (0s when empty)."""
    if not values:
        return {"count": 0, "p50": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}
    return {
        "count": len(values),
        "p50": percentile(values, 50.0),
        "p99": percentile(values, 99.0),
        "mean": float(sum(values)) / len(values),
        "max": float(max(values)),
    }


@dataclass(frozen=True)
class ItemRecord:
    """One completed logical work item (a single image/job in a batch)."""

    tenant: str
    template: str
    arrival_s: float
    start_s: float
    finish_s: float
    batch_size: int = 1

    @property
    def queue_wait_s(self) -> float:
        """Arrival to partition allocation (includes batching delay)."""
        return self.start_s - self.arrival_s

    @property
    def turnaround_s(self) -> float:
        return self.finish_s - self.arrival_s


@dataclass
class Accounting:
    """Append-only sink the service loop reports into."""

    offered: int = 0
    sheds: list = field(default_factory=list)
    items: list = field(default_factory=list)
    pipelines: list = field(default_factory=list)  # (arrival_s, finish_s, tenant)
    backlog_samples: list = field(default_factory=list)  # (t_s, depth)
    busy_node_s: float = 0.0
    submissions: int = 0

    # -- event hooks ---------------------------------------------------------

    def record_offered(self, n: int = 1) -> None:
        self.offered += n

    def record_shed(self, rejection) -> None:
        self.sheds.append(rejection)

    def record_submission(self) -> None:
        self.submissions += 1

    def record_items(self, records: list) -> None:
        self.items.extend(records)

    def record_pipeline(self, arrival_s: float, finish_s: float, tenant: str) -> None:
        self.pipelines.append((arrival_s, finish_s, tenant))

    def record_backlog(self, t_s: float, depth: int) -> None:
        self.backlog_samples.append((t_s, depth))

    def record_service(self, partition_size: int, service_s: float) -> None:
        self.busy_node_s += partition_size * service_s

    # -- reductions ----------------------------------------------------------

    @property
    def shed_count(self) -> int:
        return len(self.sheds)

    @property
    def shed_rate(self) -> float:
        """Fraction of offered work items turned away at the door."""
        return self.shed_count / self.offered if self.offered else 0.0

    def utilization(self, usable_nodes: int, elapsed_s: float) -> float:
        """Busy node-seconds over the machine's node-seconds."""
        if usable_nodes <= 0 or elapsed_s <= 0.0:
            return 0.0
        return self.busy_node_s / (usable_nodes * elapsed_s)

    def snapshot(
        self, *, config: dict, usable_nodes: int, elapsed_s: float,
        backlog_end: int,
    ) -> dict:
        """The schema-versioned steady-state metrics document."""
        queue_waits = [item.queue_wait_s for item in self.items]
        turnarounds = [item.turnaround_s for item in self.items]
        depths = [depth for _, depth in self.backlog_samples]

        tenants = sorted(
            {item.tenant for item in self.items}
            | {shed.tenant for shed in self.sheds}
        )
        per_tenant = []
        for tenant in tenants:
            mine = [item for item in self.items if item.tenant == tenant]
            shed = sum(1 for s in self.sheds if s.tenant == tenant)
            per_tenant.append(
                {
                    "tenant": tenant,
                    "completed": len(mine),
                    "shed": shed,
                    "queue_wait": _dist([i.queue_wait_s for i in mine]),
                    "turnaround": _dist([i.turnaround_s for i in mine]),
                }
            )

        shed_reasons: dict = {}
        for rejection in self.sheds:
            shed_reasons[rejection.reason] = shed_reasons.get(rejection.reason, 0) + 1

        doc = {
            "schema": SNAPSHOT_SCHEMA,
            "config": dict(config),
            "jobs": {
                "offered": self.offered,
                "admitted": self.offered - self.shed_count,
                "completed": len(self.items),
                "submissions": self.submissions,
                "shed": self.shed_count,
                "shed_rate": self.shed_rate,
                "shed_reasons": dict(sorted(shed_reasons.items())),
                "pipelines_completed": len(self.pipelines),
            },
            "latency": {
                "queue_wait": _dist(queue_waits),
                "turnaround": _dist(turnarounds),
                "pipeline_makespan": _dist(
                    [finish - arrival for arrival, finish, _ in self.pipelines]
                ),
            },
            "backlog": {
                "samples": len(depths),
                "peak": int(max(depths)) if depths else 0,
                "mean": float(sum(depths)) / len(depths) if depths else 0.0,
                "end": int(backlog_end),
            },
            "utilization": self.utilization(usable_nodes, elapsed_s),
            "elapsed_s": float(elapsed_s),
            "per_tenant": per_tenant,
        }
        validate_snapshot(doc)
        return doc


_DIST_FIELDS = ("count", "p50", "p99", "mean", "max")


def _check_dist(where: str, dist) -> None:
    if not isinstance(dist, dict) or set(dist) != set(_DIST_FIELDS):
        raise ConfigurationError(f"{where}: malformed distribution summary")
    if dist["count"] < 0 or dist["p50"] > dist["p99"] + 1e-12:
        raise ConfigurationError(f"{where}: inconsistent percentiles")
    if dist["p99"] > dist["max"] + 1e-12:
        raise ConfigurationError(f"{where}: p99 exceeds max")


def validate_snapshot(doc) -> None:
    """Structural + consistency check of a service snapshot document.

    Raises :class:`~repro.errors.ConfigurationError` on any violation.
    """
    if not isinstance(doc, dict):
        raise ConfigurationError(f"snapshot must be a dict, got {type(doc)}")
    if doc.get("schema") != SNAPSHOT_SCHEMA:
        raise ConfigurationError(
            f"unknown snapshot schema {doc.get('schema')!r}; "
            f"expected {SNAPSHOT_SCHEMA!r}"
        )
    for key in ("config", "jobs", "latency", "backlog"):
        if not isinstance(doc.get(key), dict):
            raise ConfigurationError(f"snapshot is missing its {key!r} dict")
    jobs = doc["jobs"]
    for key in ("offered", "admitted", "completed", "shed", "submissions"):
        value = jobs.get(key)
        if not isinstance(value, int) or value < 0:
            raise ConfigurationError(f"jobs.{key} must be a non-negative int")
    if jobs["admitted"] + jobs["shed"] != jobs["offered"]:
        raise ConfigurationError("jobs: admitted + shed != offered")
    if not 0.0 <= jobs["shed_rate"] <= 1.0:
        raise ConfigurationError("jobs.shed_rate outside [0, 1]")
    for key in ("queue_wait", "turnaround", "pipeline_makespan"):
        _check_dist(f"latency.{key}", doc["latency"].get(key))
    if not 0.0 <= doc.get("utilization", -1.0) <= 1.0 + 1e-9:
        raise ConfigurationError("utilization outside [0, 1]")
    backlog = doc["backlog"]
    if backlog.get("peak", -1) < 0 or backlog.get("end", -1) < 0:
        raise ConfigurationError("backlog peak/end must be >= 0")
    if not isinstance(doc.get("per_tenant"), list):
        raise ConfigurationError("snapshot is missing its per_tenant list")
    for entry in doc["per_tenant"]:
        _check_dist(f"per_tenant[{entry.get('tenant')}].turnaround",
                    entry.get("turnaround"))


def write_snapshot_json(path: str, doc: dict) -> None:
    """Validate and write a snapshot as pretty-printed JSON."""
    validate_snapshot(doc)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
