"""Architecture-invariant workload characterization (Appendix C).

Pipeline: synthesize or supply a :class:`Trace` -> pack it with the
oracle scheduler (:func:`oracle_schedule`) into a
:class:`ParallelWorkload` -> characterize with :func:`centroid`,
:func:`similarity` (the vector-space model), :func:`frobenius_similarity`
(the parallelism-matrix baseline), and :func:`smoothability`.
"""

from repro.workload.centroid import centroid, similarity, similarity_matrix
from repro.workload.kernels import (
    appbt,
    applu,
    appsp,
    buk,
    cgm,
    embar,
    fftpde,
    mgrid,
    nas_suite,
    toy_workloads,
)
from repro.workload.io import load_trace, load_workload, save_trace, save_workload
from repro.workload.machine_fit import required_units, sustained_rate, typed_list_schedule
from repro.workload.matrix import dense_size, frobenius_similarity, parallelism_matrix
from repro.workload.oracle import ScheduleResult, list_schedule, oracle_schedule
from repro.workload.smoothability import SmoothabilityResult, smoothability
from repro.workload.suite import coverage_radius, redundant_pairs, select_representatives
from repro.workload.trace import INSTRUCTION_TYPES, Instruction, ParallelWorkload, Trace

__all__ = [
    "INSTRUCTION_TYPES",
    "Instruction",
    "Trace",
    "ParallelWorkload",
    "ScheduleResult",
    "oracle_schedule",
    "list_schedule",
    "centroid",
    "similarity",
    "similarity_matrix",
    "parallelism_matrix",
    "frobenius_similarity",
    "dense_size",
    "smoothability",
    "SmoothabilityResult",
    "typed_list_schedule",
    "required_units",
    "sustained_rate",
    "save_trace",
    "load_trace",
    "save_workload",
    "load_workload",
    "redundant_pairs",
    "select_representatives",
    "coverage_radius",
    "embar",
    "mgrid",
    "cgm",
    "fftpde",
    "buk",
    "applu",
    "appsp",
    "appbt",
    "nas_suite",
    "toy_workloads",
]
