"""Synthetic workload generators standing in for the NAS Parallel
Benchmark traces of Appendix C Section 5.

The original study traced SPARC executions of the NPB sample-size codes
with ``spy`` and scheduled them with SITA; neither tool nor the traces
are available, so each generator synthesizes a dependence graph with the
defining computational structure of its benchmark — which is what the
centroid/similarity/smoothability methodology actually responds to.  The
generators are sized so the suite reproduces Table 7's *structure*: a
shared int > mem > branch > fp operation mix with average parallelism
ordered ``buk < cgm < mgrid < embar < fftpde < applu < appbt < appsp``
(magnitudes scaled down ~4x to keep traces tractable; ratios preserved).

================  ===========================================================
``embar``         independent pseudorandom chains (embarrassingly parallel;
                  jittered chain lengths -> imperfect smoothability)
``mgrid``         multigrid stencil sweeps (wide, uniform levels -> very
                  smooth)
``cgm``           sparse mat-vec with reduction trees (narrow, moderate)
``fftpde``        FFT butterflies (log-depth, uniform width, control ops)
``buk``           integer bucket sort (serial histogram chains -> the
                  suite's least smoothable member, integer-heavy)
``applu/appsp/appbt``  simulated-CFD factorization sweeps (very wide
                  levels; widths ordered appsp > appbt > applu as in
                  Table 7)
================  ===========================================================

Also provided: the five toy workloads of Appendix C Section 4.1 (given in
the paper directly as parallel-instruction tables), used to regenerate the
parallelism-matrix vs vector-space comparison.  Parts of the source
tables are corrupted in the surviving text; the readable rows are encoded
verbatim and WL5 is reconstructed to preserve the property the section
discusses — a centroid nearly identical to WL1's built from parallel
instructions that never *equal* WL1's (see EXPERIMENTS.md).
"""

from __future__ import annotations

import numpy as np

from repro.workload.trace import ParallelWorkload, Trace

__all__ = [
    "embar",
    "mgrid",
    "cgm",
    "fftpde",
    "buk",
    "applu",
    "appsp",
    "appbt",
    "nas_suite",
    "toy_workloads",
]


def _chain(trace: Trace, length: int, pattern, prev=None):
    """Append a dependent chain of instructions following ``pattern``
    (cycled); returns the index of the final instruction."""
    for i in range(length):
        itype = pattern[i % len(pattern)]
        deps = (prev,) if prev is not None else ()
        prev = trace.append(itype, deps)
    return prev


def _tree_reduce(trace: Trace, nodes: list, itype: str = "fpops"):
    """Binary reduction tree over ``nodes``; returns the root index."""
    level = list(nodes)
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(trace.append(itype, (level[i], level[i + 1])))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def embar(chains: int = 190, mean_length: int = 22, seed: int = 0) -> Trace:
    """Embarrassingly parallel random-number kernel: many independent
    chains with jittered lengths (the jitter is why the paper measures
    smoothability 0.83 rather than 1.0)."""
    rng = np.random.default_rng(seed)
    trace = Trace("embar")
    # Mix targeting Table 7's embar direction: int .42, mem .31, fp .07, br .19.
    pattern = (
        "intops", "memops", "intops", "branchops", "memops",
        "intops", "fpops", "branchops", "memops", "intops",
    )
    tails = []
    for _ in range(chains):
        length = max(4, int(rng.normal(mean_length, mean_length / 8)))
        tails.append(_chain(trace, length, pattern))
    trace_root = _tree_reduce(trace, tails)
    trace.append("branchops", (trace_root,))
    return trace


def mgrid(side: int = 8, sweeps: int = 14, seed: int = 0) -> Trace:
    """Multigrid stencil: each sweep's points depend on the previous
    sweep — wide, perfectly flat levels (the suite's smoothest member)."""
    trace = Trace("mgrid")
    previous = [trace.append("memops") for _ in range(side * side)]
    for sweep in range(sweeps):
        current = []
        for i in range(side * side):
            left = previous[i - 1] if i > 0 else previous[i]
            up = previous[i - side] if i >= side else previous[i]
            addr = trace.append("intops", (previous[i],))
            loaded = trace.append("memops", (addr,))
            summed = trace.append("intops", (loaded, left, up))
            if i % 8 == 0:
                trace.append("branchops", (summed,))
            if i % 50 == 49:
                summed = trace.append("fpops", (summed,))
            current.append(summed)
        if sweep % 4 == 0:
            trace.append("controlops", (current[0],))
        previous = current
    return trace


def cgm(rows: int = 10, nnz_per_row: int = 5, iterations: int = 8, seed: int = 0) -> Trace:
    """Conjugate-gradient-style sparse mat-vec plus dot-product reduction:
    narrow parallelism bounded by the gather/reduce structure."""
    rng = np.random.default_rng(seed)
    trace = Trace("cgm")
    x = [trace.append("memops") for _ in range(rows)]
    for _it in range(iterations):
        products = []
        for _row in range(rows):
            cols = rng.integers(0, rows, size=nnz_per_row)
            acc = None
            for c in cols:
                index = trace.append("intops", (x[c],))
                load = trace.append("memops", (index,))
                acc = trace.append(
                    "intops", (load,) if acc is None else (load, acc)
                )
            products.append(trace.append("fpops", (acc,)))
        dot = _tree_reduce(trace, products, itype="fpops")
        trace.append("branchops", (dot,))
        x = [trace.append("intops", (p, dot)) for p in products]
    return trace


def fftpde(n: int = 256, seed: int = 0) -> Trace:
    """FFT butterflies: log2(n) stages of n/2 independent butterflies,
    with the control-op flavor the paper's fftpde centroid shows."""
    trace = Trace("fftpde")
    values = [trace.append("memops") for _ in range(n)]
    stride = 1
    while stride < n:
        new_values = list(values)
        for start in range(0, n, 2 * stride):
            for k in range(start, start + stride):
                a, b = values[k], values[k + stride]
                tw = trace.append("intops", (b,))
                ld = trace.append("memops", (tw,))
                mul = trace.append("fpops", (ld,))
                new_values[k] = trace.append("intops", (a, mul))
                new_values[k + stride] = trace.append("intops", (a, mul))
                if k % 8 == 0:
                    trace.append("branchops", (tw,))
        for _ in range(max(1, n // 256)):
            trace.append("controlops", (new_values[0],))
        values = new_values
        stride *= 2
    return trace


def buk(n: int = 400, buckets: int = 3, block: int = 128, seed: int = 0) -> Trace:
    """Integer bucket sort: alternating phases — a wide burst reading a
    block of keys, then serial count updates through a handful of bucket
    chains.  The bursty profile over a narrow average is what makes buk
    the suite's least smoothable member (Table 9)."""
    rng = np.random.default_rng(seed)
    trace = Trace("buk")
    last_update = [None] * buckets
    for start in range(0, n, block):
        keys = []
        for _ in range(min(block, n - start)):
            key = trace.append("memops")
            keys.append(trace.append("intops", (key,)))
        for index in keys:
            bucket = int(rng.integers(0, buckets))
            deps = (
                (index,)
                if last_update[bucket] is None
                else (index, last_update[bucket])
            )
            last_update[bucket] = trace.append("intops", deps)
        trace.append("branchops", (keys[-1],))
    # Prefix-sum over buckets: fully serial epilogue.
    prev = last_update[0]
    for b in range(1, buckets):
        prev = trace.append("intops", (prev, last_update[b]))
    return trace


def _cfd_kernel(
    name: str, width: int, iters: int, fp_every: int, seed: int = 0
) -> Trace:
    """Shared generator for the simulated-CFD codes: ``iters`` wide sweeps
    of ``width`` independent points, each a short int/mem bundle with a
    per-point branch; widths set the huge centroids of Table 7."""
    trace = Trace(name)
    previous = [trace.append("memops") for _ in range(width)]
    for _it in range(iters):
        current = []
        for i in range(width):
            addr = trace.append("intops", (previous[i],))
            load = trace.append("memops", (addr,))
            val = trace.append("intops", (load,))
            if fp_every and i % fp_every == 0:
                val = trace.append("fpops", (val,))
            if i % 3 == 0:
                trace.append("branchops", (addr,))
            current.append(val)
        trace.append("controlops", (current[0],))
        previous = current
    return trace


def applu(width: int = 1200, iters: int = 5, seed: int = 0) -> Trace:
    """LU-factorization sweep kernel (wide, branch-heavy)."""
    return _cfd_kernel("applu", width, iters, fp_every=15, seed=seed)


def appsp(width: int = 4000, iters: int = 4, seed: int = 0) -> Trace:
    """Scalar-pentadiagonal kernel (the suite's widest workload)."""
    return _cfd_kernel("appsp", width, iters, fp_every=14, seed=seed)


def appbt(width: int = 2000, iters: int = 4, seed: int = 0) -> Trace:
    """Block-tridiagonal kernel (wide, lighter FP than appsp)."""
    return _cfd_kernel("appbt", width, iters, fp_every=50, seed=seed)


def nas_suite(scale: float = 1.0) -> list:
    """The eight NAS-like traces at a common size scale."""
    s = max(0.1, scale)
    return [
        embar(chains=max(8, int(190 * s))),
        mgrid(side=max(3, int(8 * np.sqrt(s)))),
        cgm(rows=max(6, int(10 * s))),
        fftpde(n=max(16, 1 << int(np.log2(max(16, 256 * s))))),
        buk(n=max(50, int(400 * s))),
        applu(width=max(16, int(1200 * s))),
        appsp(width=max(16, int(4000 * s))),
        appbt(width=max(16, int(2000 * s))),
    ]


def toy_workloads() -> list:
    """The five toy workloads of Appendix C Section 4.1.

    Rows are (MEM, FP, INT) with ``#PIS`` repeat counts, mapped onto the
    five-type vector (INT, MEM, FP, 0, 0).  WL1-WL4 follow the readable
    source tables.  WL5's table is corrupted in the surviving text; it is
    reconstructed to exhibit the property the section ascribes to it: a
    centroid nearly identical to WL1's (vector-space similarity low) built
    from parallel instructions that never equal WL1's (so the
    parallelism-matrix metric saturates).  Zero rows are idle cycles.
    """

    def make(name, rows, repeats):
        mapped = [(int_, mem, fp, 0, 0) for (mem, fp, int_) in rows]
        return ParallelWorkload.from_counts(name, mapped, repeats)

    wl1 = make("WL1", [(1, 0, 1), (0, 1, 0), (1, 0, 0), (0, 0, 1)], [5, 3, 7, 2])
    wl2 = make("WL2", [(0, 1, 1), (1, 1, 0), (1, 0, 1), (1, 1, 1)], [2, 3, 7, 5])
    wl3 = make("WL3", [(3, 2, 1), (4, 3, 0)], [5, 7])
    wl4 = make("WL4", [(4, 3, 2), (3, 4, 2)], [3, 7])
    wl5 = make(
        "WL5",
        [(2, 0, 1), (0, 1, 1), (2, 1, 1), (0, 0, 0)],
        [5, 2, 1, 9],
    )
    return [wl1, wl2, wl3, wl4, wl5]
