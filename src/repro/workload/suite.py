"""Benchmark-suite composition analysis.

Appendix C's conclusion: centroid distance "provide[s] the basis for
quantifiable analysis of workloads to make informed decisions on the
composition of parallel benchmark suites" — similar workloads are
redundant, distant ones add coverage.  This module operationalizes that:

* :func:`redundant_pairs` — workload pairs below a similarity threshold
  (candidates for pruning),
* :func:`select_representatives` — a greedy farthest-point subset of
  ``k`` workloads maximizing mutual dissimilarity (suite design),
* :func:`coverage_radius` — how well a suite covers a set of target
  workloads (max distance from any target to its nearest suite member).
"""

from __future__ import annotations

import numpy as np

from repro.errors import TraceError
from repro.workload.centroid import similarity, similarity_matrix
from repro.workload.trace import ParallelWorkload

__all__ = ["redundant_pairs", "select_representatives", "coverage_radius"]


def redundant_pairs(workloads: list, threshold: float = 0.35) -> list:
    """Workload index pairs whose similarity distance is below
    ``threshold`` (i.e. that exercise a machine almost identically).

    Returns ``[(i, j, distance), ...]`` sorted most-redundant first.
    """
    if not 0.0 < threshold <= 1.0:
        raise TraceError(f"threshold must be in (0, 1], got {threshold}")
    matrix = similarity_matrix(workloads)
    pairs = []
    for i in range(len(workloads)):
        for j in range(i):
            if matrix[i, j] < threshold:
                pairs.append((j, i, float(matrix[i, j])))
    return sorted(pairs, key=lambda p: p[2])


def select_representatives(workloads: list, k: int) -> list:
    """Greedy farthest-point selection of ``k`` suite members.

    Starts from the workload with the largest total work (the anchor a
    suite designer would keep) and repeatedly adds the workload farthest
    from the current selection.  Returns the selected indices in
    selection order.
    """
    n = len(workloads)
    if not 1 <= k <= n:
        raise TraceError(f"k must be in [1, {n}], got {k}")
    matrix = similarity_matrix(workloads)
    anchor = int(
        np.argmax([w.total_operations for w in workloads])
    )
    selected = [anchor]
    while len(selected) < k:
        remaining = [i for i in range(n) if i not in selected]
        # Farthest point: maximize the minimum distance to the selection.
        best = max(
            remaining, key=lambda i: min(matrix[i, s] for s in selected)
        )
        selected.append(best)
    return selected


def coverage_radius(suite: list, targets: list) -> float:
    """Largest distance from any target workload to its nearest suite
    member (0 = every target has an identical representative)."""
    if not suite or not targets:
        raise TraceError("suite and targets must be non-empty")
    worst = 0.0
    for target in targets:
        nearest = min(similarity(target, member) for member in suite)
        worst = max(worst, nearest)
    return worst
