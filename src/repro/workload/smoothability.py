"""Smoothability (Appendix C Section 5.5).

Smoothability measures how well a workload's parallelism profile tolerates
being "smoothed" down to its own average width:

    smoothability = CPL(infinity) / CPL(P_avg)

where ``CPL(infinity)`` is the oracle critical path and ``CPL(P_avg)`` the
schedule length when at most ``P_avg`` (the average degree of parallelism)
operations fit in one parallel instruction.  Values near 1 mean the
profile is already flat, which is what justifies representing a workload
by its centroid — the section's closing argument.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workload.oracle import list_schedule, oracle_schedule
from repro.workload.trace import Trace

__all__ = ["SmoothabilityResult", "smoothability"]


@dataclass
class SmoothabilityResult:
    """The quantities of Appendix C Table 9 for one workload."""

    name: str
    smoothability: float
    cpl_unlimited: int
    average_parallelism: float
    cpl_limited: int
    average_delay: float


def smoothability(trace: Trace) -> SmoothabilityResult:
    """Compute smoothability and the associated Table 9 statistics."""
    unlimited = oracle_schedule(trace)
    p_avg = max(1.0, unlimited.average_parallelism)
    limited = list_schedule(trace, capacity=p_avg)
    return SmoothabilityResult(
        name=trace.name,
        smoothability=unlimited.critical_path / limited.critical_path,
        cpl_unlimited=unlimited.critical_path,
        average_parallelism=unlimited.average_parallelism,
        cpl_limited=limited.critical_path,
        average_delay=limited.average_delay,
    )
