"""Machine-fit analysis: the centroid as a resource-requirement predictor.

Appendix C argues the centroid "represents the functional units types and
average number of them needed in the target machine in order to sustain a
performance rate close to the machine's peak rate".  This module makes
that claim testable:

* :func:`typed_list_schedule` — list scheduling under *per-category*
  functional-unit limits (an abstract superscalar with ``k`` integer
  units, ``j`` memory ports, ...).
* :func:`required_units` — the centroid rounded up: the machine the
  centroid predicts.
* :func:`sustained_rate` — operations per cycle actually achieved on a
  given machine configuration.

The benchmark ``benchmarks/test_bench_machine_fit.py`` checks the paper's
claim: a machine provisioned at the centroid sustains close to the
workload's oracle rate, while halving the dominant unit type collapses
throughput and halving a rare one is free.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import TraceError
from repro.workload.oracle import ScheduleResult
from repro.workload.trace import INSTRUCTION_TYPES, ParallelWorkload, Trace

__all__ = ["typed_list_schedule", "required_units", "sustained_rate"]


def _normalize_units(units) -> dict:
    if isinstance(units, dict):
        unknown = set(units) - set(INSTRUCTION_TYPES)
        if unknown:
            raise TraceError(f"unknown instruction types in units: {sorted(unknown)}")
        resolved = {t: int(units.get(t, 0)) for t in INSTRUCTION_TYPES}
    else:
        values = list(units)
        if len(values) != len(INSTRUCTION_TYPES):
            raise TraceError(
                f"units must have {len(INSTRUCTION_TYPES)} entries, got {len(values)}"
            )
        resolved = {t: int(v) for t, v in zip(INSTRUCTION_TYPES, values)}
    for name, count in resolved.items():
        if count < 1:
            raise TraceError(f"machine needs >= 1 unit of every type; {name} has {count}")
    return resolved


def typed_list_schedule(trace: Trace, units) -> ScheduleResult:
    """Greedy earliest-slot scheduling with per-type issue limits.

    ``units`` maps each instruction category to the number of that
    category's operations issuable per cycle (dict or 5-sequence in
    :data:`INSTRUCTION_TYPES` order).
    """
    resolved = _normalize_units(units)
    n = len(trace)
    if n == 0:
        raise TraceError("cannot schedule an empty trace")
    limits = [resolved[t] for t in INSTRUCTION_TYPES]

    levels = np.zeros(n, dtype=np.int64)
    used: dict = {}
    total_delay = 0.0
    for i in range(n):
        earliest = 0
        for d in trace.deps[i]:
            if levels[d] > earliest:
                earliest = levels[d]
        itype = trace.types[i]
        limit = limits[itype]
        cycle = earliest + 1
        key = (cycle, itype)
        while used.get(key, 0) + 1 > limit:
            cycle += 1
            key = (cycle, itype)
        used[key] = used.get(key, 0) + 1
        levels[i] = cycle
        total_delay += cycle - (earliest + 1)

    ncycles = int(levels.max())
    counts = np.zeros((ncycles, len(INSTRUCTION_TYPES)))
    types = np.array(trace.types, dtype=np.int64)
    np.add.at(counts, (levels - 1, types), 1.0)
    workload = ParallelWorkload(name=f"{trace.name}@typed", levels=counts)
    return ScheduleResult(
        workload=workload, critical_path=ncycles, average_delay=total_delay / n
    )


def required_units(workload: ParallelWorkload, headroom: float = 1.0) -> dict:
    """The machine configuration the centroid predicts: per-type units =
    ``ceil(headroom * centroid)`` (never below one)."""
    if headroom <= 0:
        raise TraceError(f"headroom must be positive, got {headroom}")
    centroid = workload.centroid()
    return {
        name: max(1, math.ceil(headroom * value))
        for name, value in zip(INSTRUCTION_TYPES, centroid)
    }


def sustained_rate(trace: Trace, units) -> float:
    """Operations per cycle achieved under the given unit configuration."""
    result = typed_list_schedule(trace, units)
    return result.workload.total_operations / result.critical_path
