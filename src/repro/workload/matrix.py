"""The parallelism-matrix baseline (Appendix C Section 2; Bradley &
Larson's EPI technique, extended to the oracle model).

A workload's profile is the multi-dimensional histogram over parallel
instructions: cell ``(a_1, ..., a_t)`` holds the fraction of cycles that
issued exactly ``a_k`` operations of each type ``k``.  Two workloads are
compared by the Frobenius norm of the histogram difference, normalized by
its sqrt(2) maximum.

The histogram is stored sparsely (a dict keyed by count tuples) — the
dense matrix the paper criticizes costs O(n^t) space, which this module's
:func:`dense_size` quantifies for the cost-comparison benchmark
(Appendix C Table 5).
"""

from __future__ import annotations

import math

import numpy as np

from repro.workload.trace import ParallelWorkload

__all__ = ["parallelism_matrix", "frobenius_similarity", "dense_size"]


def parallelism_matrix(workload: ParallelWorkload) -> dict:
    """Sparse executed-parallelism histogram: count-tuple -> cycle fraction."""
    histogram: dict = {}
    cycles = workload.cycles
    for row in workload.levels:
        key = tuple(int(v) for v in row)
        histogram[key] = histogram.get(key, 0.0) + 1.0 / cycles
    return histogram


def frobenius_similarity(a: ParallelWorkload, b: ParallelWorkload) -> float:
    """Normalized Frobenius distance between parallelism matrices
    (expression (3), divided by its sqrt(2) maximum).

    The metric only credits *identical* parallel instructions: two
    workloads with similar-but-never-equal instructions score the maximal
    distance — the shortcoming the vector-space model fixes.
    """
    ha = parallelism_matrix(a)
    hb = parallelism_matrix(b)
    keys = set(ha) | set(hb)
    total = sum((ha.get(k, 0.0) - hb.get(k, 0.0)) ** 2 for k in keys)
    return math.sqrt(total) / math.sqrt(2.0)


def dense_size(workload: ParallelWorkload) -> int:
    """Cells of the dense parallelism matrix: ``prod(max_k + 1)`` over
    types — the O(n^t) storage of Appendix C Table 5."""
    maxima = workload.levels.max(axis=0).astype(np.int64)
    size = 1
    for m in maxima:
        size *= int(m) + 1
    return size
