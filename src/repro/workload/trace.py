"""Instruction traces and parallel workloads (Appendix C's data model).

Appendix C characterizes workloads by the *parallel instructions* an
oracle machine would execute: each cycle, a vector of per-type operation
counts.  Two representations exist here:

* :class:`Trace` — a dynamic sequential instruction stream with explicit
  true-flow dependencies (what the spy/SITA pipeline produced from SPARC
  executions; we synthesize it).  The oracle scheduler packs it into
  parallel instructions.
* :class:`ParallelWorkload` — the packed result: a ``(cycles, types)``
  count matrix.  The paper's toy examples (Section 4.1) specify workloads
  directly in this form.

The five instruction categories follow Appendix C Section 5.2's SPARC
classification: integer, memory, floating-point, control-register, and
branch operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TraceError

__all__ = ["INSTRUCTION_TYPES", "Instruction", "Trace", "ParallelWorkload"]

INSTRUCTION_TYPES = ("intops", "memops", "fpops", "controlops", "branchops")
_TYPE_INDEX = {name: i for i, name in enumerate(INSTRUCTION_TYPES)}


@dataclass(frozen=True)
class Instruction:
    """One dynamic instruction: its category and true-flow dependencies
    (indices of earlier instructions whose results it consumes)."""

    itype: str
    deps: tuple = ()

    def __post_init__(self) -> None:
        if self.itype not in _TYPE_INDEX:
            raise TraceError(
                f"unknown instruction type {self.itype!r}; "
                f"expected one of {INSTRUCTION_TYPES}"
            )


class Trace:
    """A dynamic instruction stream with dataflow edges.

    Stored as parallel arrays: ``types[i]`` is the category index of
    instruction ``i`` and ``deps[i]`` the tuple of producer indices
    (each strictly less than ``i``).
    """

    def __init__(self, name: str = "trace") -> None:
        self.name = name
        self.types: list = []
        self.deps: list = []

    def __len__(self) -> int:
        return len(self.types)

    def append(self, itype: str, deps=()) -> int:
        """Append an instruction; returns its index for use as a dependency."""
        try:
            type_index = _TYPE_INDEX[itype]
        except KeyError:
            raise TraceError(
                f"unknown instruction type {itype!r}; expected one of {INSTRUCTION_TYPES}"
            ) from None
        index = len(self.types)
        for dep in deps:
            if not 0 <= dep < index:
                raise TraceError(
                    f"instruction {index} depends on {dep}, which is not an "
                    "earlier instruction"
                )
        self.types.append(type_index)
        self.deps.append(tuple(deps))
        return index

    def type_mix(self) -> np.ndarray:
        """Fraction of instructions per category."""
        counts = np.bincount(np.array(self.types, dtype=np.int64), minlength=len(INSTRUCTION_TYPES))
        total = max(1, len(self.types))
        return counts / total


@dataclass
class ParallelWorkload:
    """A packed parallel-instruction stream.

    ``levels[c, t]`` is the number of type-``t`` operations issued in
    cycle ``c``.  This is the paper's workload representation: centroids,
    similarity, and the parallelism matrix all derive from it.
    """

    name: str
    levels: np.ndarray

    def __post_init__(self) -> None:
        self.levels = np.asarray(self.levels, dtype=np.float64)
        if self.levels.ndim != 2:
            raise TraceError("levels must be a (cycles, types) matrix")
        if self.levels.shape[1] != len(INSTRUCTION_TYPES):
            raise TraceError(
                f"levels must have {len(INSTRUCTION_TYPES)} type columns, "
                f"got {self.levels.shape[1]}"
            )
        if self.levels.shape[0] < 1:
            raise TraceError("workload needs at least one parallel instruction")

    @classmethod
    def from_counts(cls, name: str, rows, repeats=None) -> "ParallelWorkload":
        """Build from explicit parallel instructions.

        ``rows`` is a sequence of per-type count vectors; ``repeats[i]``
        (the paper's ``#PIS`` column) replicates row ``i`` that many times.
        Rows shorter than the full type tuple are zero-padded (the toy
        examples use only MEM/FP/INT).
        """
        expanded = []
        repeats = [1] * len(rows) if repeats is None else list(repeats)
        if len(repeats) != len(rows):
            raise TraceError("repeats must match rows")
        for row, count in zip(rows, repeats):
            if count < 1:
                raise TraceError(f"repeat count must be >= 1, got {count}")
            padded = list(row) + [0] * (len(INSTRUCTION_TYPES) - len(row))
            expanded.extend([padded] * count)
        return cls(name=name, levels=np.array(expanded, dtype=np.float64))

    @property
    def cycles(self) -> int:
        """Number of parallel instructions (critical-path length)."""
        return self.levels.shape[0]

    @property
    def total_operations(self) -> float:
        """Total work across all cycles."""
        return float(self.levels.sum())

    @property
    def average_parallelism(self) -> float:
        """Mean operations per cycle (degree of parallelism)."""
        return self.total_operations / self.cycles

    def centroid(self) -> np.ndarray:
        """The paper's workload centroid: per-type mean over all parallel
        instructions (expression (6))."""
        return self.levels.mean(axis=0)

    def parallelism_profile(self) -> np.ndarray:
        """Operations per cycle (the temporal parallelism profile)."""
        return self.levels.sum(axis=1)
