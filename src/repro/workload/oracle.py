"""The oracle scheduler (Appendix C Sections 3 and 5.2).

The oracle model is the idealized machine — unlimited processors, no
overhead, perfect branch and memory disambiguation — under which only
*true flow dependencies* constrain when an instruction may execute.  The
scheduler places every instruction at the earliest level after all of its
producers, packing the trace into parallel instructions; this is the
architecture-invariant representation the vector-space model builds on.

:func:`list_schedule` additionally supports the finite-processor variant
SITA provides ("the ability to limit the number of operations which can be
packed into one parallel instruction"), which Table 9's smoothability
study requires.  It is a greedy earliest-slot list scheduler; the
returned :class:`ScheduleResult` carries the average operation delay the
table reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.workload.trace import INSTRUCTION_TYPES, ParallelWorkload, Trace

__all__ = ["ScheduleResult", "oracle_schedule", "list_schedule"]


@dataclass
class ScheduleResult:
    """A scheduled trace: the packed workload plus scheduling statistics."""

    workload: ParallelWorkload
    critical_path: int
    average_delay: float  # mean cycles each op waits past its earliest level

    @property
    def average_parallelism(self) -> float:
        """Operations per cycle under this schedule."""
        return self.workload.average_parallelism


def oracle_schedule(trace: Trace) -> ScheduleResult:
    """Pack a trace into parallel instructions on the unlimited oracle.

    ``level[i] = 1 + max(level[d] for d in deps[i])`` (1 for roots).
    """
    n = len(trace)
    if n == 0:
        raise TraceError("cannot schedule an empty trace")
    levels = np.zeros(n, dtype=np.int64)
    for i in range(n):
        deps = trace.deps[i]
        earliest = 0
        for d in deps:
            if levels[d] > earliest:
                earliest = levels[d]
        levels[i] = earliest + 1

    ncycles = int(levels.max())
    counts = np.zeros((ncycles, len(INSTRUCTION_TYPES)))
    types = np.array(trace.types, dtype=np.int64)
    np.add.at(counts, (levels - 1, types), 1.0)
    workload = ParallelWorkload(name=trace.name, levels=counts)
    return ScheduleResult(workload=workload, critical_path=ncycles, average_delay=0.0)


def list_schedule(trace: Trace, capacity: float) -> ScheduleResult:
    """Greedy earliest-slot scheduling with at most ``capacity`` operations
    per parallel instruction.

    Instructions are visited in trace order (respecting dependencies) and
    placed in the first cycle at or after their dataflow-earliest level
    with spare capacity.  Used to measure smoothability: how much the
    critical path stretches when the machine is narrowed to the workload's
    own average parallelism.
    """
    if capacity < 1:
        raise TraceError(f"capacity must be >= 1, got {capacity}")
    n = len(trace)
    if n == 0:
        raise TraceError("cannot schedule an empty trace")
    capacity = float(capacity)

    levels = np.zeros(n, dtype=np.int64)
    used: dict = {}
    total_delay = 0.0
    for i in range(n):
        earliest = 0
        for d in trace.deps[i]:
            if levels[d] > earliest:
                earliest = levels[d]
        cycle = earliest + 1
        while used.get(cycle, 0) + 1 > capacity:
            cycle += 1
        used[cycle] = used.get(cycle, 0) + 1
        levels[i] = cycle
        total_delay += cycle - (earliest + 1)

    ncycles = int(levels.max())
    counts = np.zeros((ncycles, len(INSTRUCTION_TYPES)))
    types = np.array(trace.types, dtype=np.int64)
    np.add.at(counts, (levels - 1, types), 1.0)
    workload = ParallelWorkload(name=f"{trace.name}@{capacity:g}", levels=counts)
    return ScheduleResult(
        workload=workload, critical_path=ncycles, average_delay=total_delay / n
    )
