"""The parallel-instruction vector-space model (Appendix C Section 3).

A workload is approximated by its **centroid** — the per-type mean
parallel instruction — and two workloads are compared by the **normalized
Euclidean distance** between their centroids (expressions (7)-(9)):

    Sim(r, s) = d(C_r, C_s) / d(C_max(r, s), 0)

where ``C_max`` takes the coordinate-wise maximum of the two centroids.
The metric is 0 for identical workloads, 1 for orthogonal ones, and
scales in between; unlike the parallelism-matrix baseline it responds to
*similar* (not just identical) parallel instructions, at O(t) time and
space.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TraceError
from repro.workload.trace import ParallelWorkload

__all__ = ["centroid", "similarity", "similarity_matrix"]


def centroid(workload: ParallelWorkload) -> np.ndarray:
    """Per-type mean parallel instruction (expression (6))."""
    return workload.centroid()


def similarity(a: ParallelWorkload, b: ParallelWorkload) -> float:
    """Normalized Euclidean distance between centroids (expression (9)).

    Returns 0.0 for identical centroids and 1.0 for fully orthogonal
    workloads (disjoint operation types).
    """
    ca, cb = a.centroid(), b.centroid()
    cmax = np.maximum(ca, cb)
    denominator = float(np.linalg.norm(cmax))
    if denominator == 0.0:
        raise TraceError("cannot compare two all-zero workloads")
    return float(np.linalg.norm(ca - cb)) / denominator


def similarity_matrix(workloads: list) -> np.ndarray:
    """Pairwise similarity table (the layout of Appendix C Table 8)."""
    n = len(workloads)
    out = np.zeros((n, n))
    for i in range(n):
        for j in range(i):
            out[i, j] = out[j, i] = similarity(workloads[i], workloads[j])
    return out
