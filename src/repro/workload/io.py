"""Trace and workload persistence.

Appendix C's pipeline ran over dynamic traces collected once (with spy)
and analyzed many times; this module gives the reproduction the same
workflow by persisting :class:`Trace` and :class:`ParallelWorkload`
objects as compressed ``.npz`` archives:

* traces store the type-index array plus a flattened dependency list
  (CSR-style offsets), so arbitrarily shaped dataflow graphs round-trip,
* workloads store their level matrix directly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TraceError
from repro.workload.trace import INSTRUCTION_TYPES, ParallelWorkload, Trace

__all__ = ["save_trace", "load_trace", "save_workload", "load_workload"]

_TRACE_FORMAT = 1
_WORKLOAD_FORMAT = 1


def save_trace(path, trace: Trace) -> None:
    """Write a trace to ``path`` (``.npz``)."""
    offsets = np.zeros(len(trace) + 1, dtype=np.int64)
    flat: list = []
    for i, deps in enumerate(trace.deps):
        flat.extend(deps)
        offsets[i + 1] = len(flat)
    np.savez_compressed(
        path,
        format=np.int64(_TRACE_FORMAT),
        name=np.array(trace.name),
        types=np.array(trace.types, dtype=np.int16),
        dep_offsets=offsets,
        dep_targets=np.array(flat, dtype=np.int64),
    )


def load_trace(path) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    with np.load(path, allow_pickle=False) as archive:
        if int(archive["format"]) != _TRACE_FORMAT:
            raise TraceError(
                f"unsupported trace format {int(archive['format'])}"
            )
        name = str(archive["name"])
        types = archive["types"]
        offsets = archive["dep_offsets"]
        targets = archive["dep_targets"]
    trace = Trace(name)
    for i, type_index in enumerate(types):
        if not 0 <= type_index < len(INSTRUCTION_TYPES):
            raise TraceError(f"corrupt trace: type index {type_index}")
        deps = tuple(int(d) for d in targets[offsets[i] : offsets[i + 1]])
        trace.append(INSTRUCTION_TYPES[type_index], deps)
    return trace


def save_workload(path, workload: ParallelWorkload) -> None:
    """Write a packed workload to ``path`` (``.npz``)."""
    np.savez_compressed(
        path,
        format=np.int64(_WORKLOAD_FORMAT),
        name=np.array(workload.name),
        levels=workload.levels,
    )


def load_workload(path) -> ParallelWorkload:
    """Read a workload written by :func:`save_workload`."""
    with np.load(path, allow_pickle=False) as archive:
        if int(archive["format"]) != _WORKLOAD_FORMAT:
            raise TraceError(
                f"unsupported workload format {int(archive['format'])}"
            )
        return ParallelWorkload(name=str(archive["name"]), levels=archive["levels"])
