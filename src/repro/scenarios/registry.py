"""Scenario registry: named, stable-id adversarial scenarios.

Each :class:`ScenarioDef` pairs an :class:`~repro.scenarios.adversary.
AdversaryConfig` with the *expected* detect-or-survive verdict per SPMD
app, so the certification matrix (``tests/test_scenarios_certification
.py``) and the ``python -m repro attack`` CLI agree on what every attack
is supposed to do.  Scenario ids are stable — the persisted fuzz corpus
(``tests/data/scenario_findings.json``) replays findings by
``(scenario_id, seed, placement)`` key, so renaming an id orphans its
findings the same way renumbering a tag would break the digest pins.

The three target apps are CI-sized builds of the paper's programs (the
same shapes the fault fuzzer certifies): a 64x64/F4/L2 striped wavelet
decomposition, a 48-body manager-worker Barnes-Hut step pair, and a
96-particle PIC step pair — all on a 4-rank NX Paragon with per-step
checkpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.scenarios.adversary import AdversaryConfig

__all__ = [
    "APPS",
    "NRANKS",
    "CHECKPOINT_INTERVAL",
    "ScenarioDef",
    "SCENARIOS",
    "scenario_ids",
    "get_scenario",
    "build_app",
    "build_machine",
    "HOSTILE_SOURCE",
]

#: The SPMD apps every engine scenario is certified against.
APPS = ("wavelet", "nbody", "pic")

#: Rank count of the certification machine (matching the fault fuzzer).
NRANKS = 4

#: Steps/levels between coordinated checkpoints in the target apps.
CHECKPOINT_INTERVAL = 1


@dataclass(frozen=True)
class ScenarioDef:
    """One registered adversarial scenario.

    ``expected`` maps app name -> ``(verdict, layer)`` where verdict is
    ``"detected"`` or ``"survived"`` and layer names the detecting (or
    proving) subsystem: ``deadlock``, ``transport``, ``value-transparency``,
    ``lint`` for detections; ``clean`` or ``recovery`` for survivals.
    ``kind`` is ``"engine"`` for adversary runs or ``"static"`` for
    source-level scenarios certified by the determinism/communication
    linter instead of the engine.
    """

    scenario_id: str
    title: str
    adversary: AdversaryConfig | None
    expected: dict
    description: str = ""
    kind: str = "engine"

    def __post_init__(self) -> None:
        if self.kind not in ("engine", "static"):
            raise ConfigurationError(f"unknown scenario kind {self.kind!r}")
        if self.kind == "engine" and self.adversary is None:
            raise ConfigurationError(
                f"engine scenario {self.scenario_id!r} needs an adversary"
            )
        for app, (verdict, layer) in sorted(self.expected.items()):
            if verdict not in ("detected", "survived"):
                raise ConfigurationError(
                    f"scenario {self.scenario_id!r} app {app!r}: verdict "
                    f"must be detected/survived, got {verdict!r}"
                )
            if not layer:
                raise ConfigurationError(
                    f"scenario {self.scenario_id!r} app {app!r}: empty layer"
                )

    def placed(self, rank: int) -> "ScenarioDef":
        """The same scenario with the adversary moved to ``rank`` (the
        fuzzer's placement axis)."""
        if self.adversary is None:
            return self
        return replace(self, adversary=replace(self.adversary, rank=rank))


#: A deliberately hostile rank-program source: every line trips a
#: different static rule (wildcard receive without timeout, unseeded
#: global RNG, wall-clock read).  The ``hostile-source-lint`` scenario
#: certifies the linter flags it without ever running it.
HOSTILE_SOURCE = '''\
"""A hostile rank program the static linter must flag."""

import random
import time

from repro.machines.engine import ANY_SOURCE, ANY_TAG


def hostile_program(ctx):
    deadline = time.time() + 1.0
    jitter = random.random()
    victim = yield ctx.recv(ANY_SOURCE, tag=ANY_TAG)
    yield ctx.send((ctx.rank + 1) % ctx.nranks, victim, tag=17)
    return jitter + deadline
'''


def build_machine(nranks: int = NRANKS):
    """The certification machine: an ``nranks``-node NX Paragon."""
    from repro.machines import paragon

    return paragon(nranks, protocol="nx")


def build_app(app: str, nranks: int = NRANKS):
    """Build ``(program, args, kwargs)`` for one certification app."""
    if app == "wavelet":
        from repro.data import landsat_like_scene
        from repro.wavelet import filter_bank_for_length
        from repro.wavelet.parallel.decomposition import StripeDecomposition
        from repro.wavelet.parallel.spmd import striped_wavelet_program

        image = landsat_like_scene((64, 64))
        bank = filter_bank_for_length(4)
        decomp = StripeDecomposition(64, 64, nranks, 2)
        return (
            striped_wavelet_program,
            (image, bank, 2, decomp),
            {"checkpoint_interval": CHECKPOINT_INTERVAL},
        )
    if app == "nbody":
        from repro.data import plummer_sphere
        from repro.nbody.parallel import manager_worker_program

        particles = plummer_sphere(48, dim=2, seed=0)
        return (
            manager_worker_program,
            (particles, 2),
            {"checkpoint_interval": CHECKPOINT_INTERVAL},
        )
    if app == "pic":
        from repro.data import uniform_cube
        from repro.pic import Grid3D
        from repro.pic.parallel import pic_program

        particles = uniform_cube(96, thermal_speed=0.05, seed=0)
        return (
            pic_program,
            (Grid3D(8), particles, 2),
            {"collect": False, "checkpoint_interval": CHECKPOINT_INTERVAL},
        )
    raise ConfigurationError(f"unknown scenario app {app!r}; expected one of {APPS}")


SCENARIOS = (
    ScenarioDef(
        scenario_id="withhold-silence",
        title="selective silence: hostile NIC eats every outgoing message",
        adversary=AdversaryConfig(behavior="withhold", rank=1),
        expected={
            "wavelet": ("detected", "deadlock"),
            "nbody": ("detected", "deadlock"),
            "pic": ("detected", "deadlock"),
        },
        description="Rank 1 silently discards everything it sends; its "
        "peers block forever and the causality layer diagnoses the "
        "wait-for graph.",
    ),
    ScenarioDef(
        scenario_id="withhold-jam",
        title="wire jam: every transmission from the hostile rank is lost",
        adversary=AdversaryConfig(behavior="jam", rank=1),
        expected={
            "wavelet": ("detected", "transport"),
            "nbody": ("detected", "transport"),
            "pic": ("detected", "transport"),
        },
        description="Rank 1's channel loses every attempt; the reliable "
        "transport exhausts its retransmission budget and raises.",
    ),
    ScenarioDef(
        scenario_id="spam-flood",
        title="tag-flood: junk copies ride along with every real send",
        adversary=AdversaryConfig(behavior="spam", rank=1, spam_copies=4),
        expected={
            "wavelet": ("survived", "clean"),
            "nbody": ("survived", "clean"),
            "pic": ("survived", "clean"),
        },
        description="Rank 1 floods its peers with junk on the dedicated "
        "spam channel; wire time burns but values are untouched, so the "
        "run completes digest-identical to the clean reference.",
    ),
    ScenarioDef(
        scenario_id="poison-boundary",
        title="payload poisoning: one plausible sample error per message",
        adversary=AdversaryConfig(behavior="poison", rank=1, magnitude=0.25),
        expected={
            "wavelet": ("detected", "value-transparency"),
            "nbody": ("detected", "value-transparency"),
            "pic": ("detected", "value-transparency"),
        },
        description="Rank 1 nudges one float per outgoing payload by 25% "
        "of its own scale — plausible data, silently wrong — and the "
        "value-transparency oracle flags the digest mismatch.",
    ),
    ScenarioDef(
        scenario_id="replay-stale",
        title="message replay: stale duplicates front-run real sends",
        adversary=AdversaryConfig(behavior="replay", rank=1, rate=1.0),
        expected={
            "wavelet": ("detected", "runtime-error"),
            "nbody": ("detected", "value-transparency"),
            "pic": ("detected", "runtime-error"),
        },
        description="Rank 1 re-injects each channel's previous payload "
        "ahead of the real one, so receives consume stale data: the "
        "value oracle flags the drift, or the program crashes loudly on "
        "shape-mismatched stale payloads.",
    ),
    ScenarioDef(
        scenario_id="reorder-delay",
        title="cross-channel reorder: hostile delays on outgoing traffic",
        adversary=AdversaryConfig(behavior="reorder", rank=1, delay_s=2e-3),
        expected={
            "wavelet": ("survived", "clean"),
            "nbody": ("survived", "clean"),
            "pic": ("survived", "clean"),
        },
        description="Rank 1 jitters delivery of its messages across "
        "channels; per-channel FIFO and deterministic matching keep the "
        "values bitwise identical — only the schedule stretches.",
    ),
    ScenarioDef(
        scenario_id="straggler-cartel",
        title="straggler cartel: a coalition slows its compute 4x",
        adversary=AdversaryConfig(
            behavior="cartel", rank=1, accomplices=(2,), slowdown=4.0
        ),
        expected={
            "wavelet": ("survived", "clean"),
            "nbody": ("survived", "clean"),
            "pic": ("survived", "clean"),
        },
        description="Ranks 1 and 2 collude to run 4x slow; the run drags "
        "but completes with values identical to the clean reference.",
    ),
    ScenarioDef(
        scenario_id="byzantine-reduce",
        title="Byzantine reducer: poisoning restricted to collectives",
        adversary=AdversaryConfig(behavior="byzantine", rank=1, magnitude=0.25),
        expected={
            "wavelet": ("survived", "clean"),
            "nbody": ("survived", "clean"),
            "pic": ("detected", "value-transparency"),
        },
        description="Rank 1 poisons only collective-band traffic: PIC's "
        "allreduce/gather contributions corrupt the global field and the "
        "oracle flags it.  The wavelet app routes no collective traffic "
        "through rank 1, and the manager-worker app's poisoned bcast "
        "relays land on inert slots of the serialized tree at the "
        "certified seed — both survive bitwise clean.",
    ),
    ScenarioDef(
        scenario_id="hostile-source-lint",
        title="hostile program source: flagged before it ever runs",
        adversary=None,
        kind="static",
        expected={"static": ("detected", "lint")},
        description="A rank program built on wildcard receives, global "
        "RNG, and wall-clock reads; the static analyzer detects it "
        "without executing a single rank.",
    ),
)


def scenario_ids() -> tuple:
    """Stable ids of every registered scenario, registry order."""
    return tuple(s.scenario_id for s in SCENARIOS)


def get_scenario(scenario_id: str) -> ScenarioDef:
    """Look up one scenario by stable id."""
    for scenario in SCENARIOS:
        if scenario.scenario_id == scenario_id:
            return scenario
    raise ConfigurationError(
        f"unknown scenario {scenario_id!r}; registered: {sorted(scenario_ids())}"
    )
