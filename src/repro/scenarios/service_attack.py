"""Shed/backlog attacks on the multi-tenant service loop.

The engine-level adversaries attack one run; this module attacks the
always-on service: a hostile tenant floods the arrival stream with small
batchable requests (the service-level twin of the ``spam-flood``
scenario), and the load-sweep autopilot re-measures the saturation knee
under attack.  Three sweeps tell the story:

* **clean** — the base mix, the knee the autopilot normally reports.
* **attacked** — the hostile tenant admitted unchecked: its share of
  arrivals steals capacity, so the knee (in legitimate req/s) collapses
  and backlog/shed diverge earlier.
* **defended** — the same hostile mix behind an
  :class:`~repro.service.admission.AdmissionController` rate-limiting
  the attacker: the flood is shed with typed ``rate-limit`` rejections
  and the knee recovers most of the clean capacity.

The attacked/defended sweeps reuse the *clean* capacity estimate for
their offered-load grid, so every sweep offers the same absolute req/s
points and the knees compare in one unit.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.service.admission import AdmissionController
from repro.service.autopilot import (
    DEFAULT_MULTIPLIERS,
    estimate_capacity_rate,
    run_load_sweep,
)
from repro.service.workloads import Mix, TenantProfile

__all__ = [
    "ATTACK_SWEEP_SCHEMA",
    "ATTACKER_TENANT",
    "hostile_mix",
    "attacked_sweep",
]

ATTACK_SWEEP_SCHEMA = "repro.scenarios.attacksweep/v1"

#: Name of the injected hostile tenant (the admission defense keys on it).
ATTACKER_TENANT = "attacker"


def hostile_mix(mix: Mix, *, weight: float = 4.0, work: str | None = None) -> Mix:
    """``mix`` plus a flooding tenant of the given arrival ``weight``.

    The attacker submits the smallest batchable template in the mix (or
    ``work`` if named) — maximally plausible traffic, just far too much
    of it.
    """
    if weight <= 0.0:
        raise ConfigurationError(f"attacker weight must be > 0, got {weight}")
    for tenant in mix.tenants:
        if tenant.name == ATTACKER_TENANT:
            raise ConfigurationError(f"mix {mix.name!r} already has an attacker")
    if work is None:
        candidates = sorted(
            (template.nranks, name)
            for name, template in sorted(mix.templates.items())
            if template.batchable
        ) or sorted(
            (template.nranks, name) for name, template in sorted(mix.templates.items())
        )
        if not candidates:
            raise ConfigurationError(f"mix {mix.name!r} has no templates to flood")
        work = candidates[0][1]
    elif work not in mix.templates:
        raise ConfigurationError(f"mix {mix.name!r} has no template {work!r}")
    attacker = TenantProfile(
        name=ATTACKER_TENANT, weight=weight, priority=0, work=((work, 1.0),)
    )
    return Mix(
        name=f"{mix.name}+attack",
        tenants=mix.tenants + (attacker,),
        templates=dict(mix.templates),
        pipelines=dict(mix.pipelines),
    )


def _knee_summary(doc: dict) -> dict:
    """The comparable core of one loadsweep report."""
    knee = doc["knee"]
    total_offered = sum(p["offered"] for p in doc["points"])
    total_completed = sum(p["completed"] for p in doc["points"])
    worst_shed = max(p["shed_rate"] for p in doc["points"])
    worst_backlog = max(p["backlog_end"] for p in doc["points"])
    return {
        "knee_detected": knee["detected"],
        "knee_rate_s": knee.get("rate_s"),
        "knee_offered_load": knee.get("offered_load"),
        "knee_p99_turnaround_s": knee.get("p99_turnaround_s"),
        "capacity_rate_s": doc["config"]["capacity_rate_s"],
        "offered": total_offered,
        "completed": total_completed,
        "worst_shed_rate": worst_shed,
        "worst_backlog_end": worst_backlog,
    }


def attacked_sweep(
    usable_nodes: int,
    mix: Mix,
    oracle,
    *,
    attacker_weight: float = 4.0,
    defense_rate_s: float | None = None,
    multipliers=DEFAULT_MULTIPLIERS,
    arrival_kind: str = "poisson",
    seed: int = 0,
    horizon_s: float = 40.0,
    policy_name: str = "fair",
) -> dict:
    """Re-measure the autopilot knee under a hostile-tenant flood.

    Returns a ``repro.scenarios.attacksweep/v1`` document with the three
    sweeps (clean / attacked / defended) summarized side by side, plus
    the full per-sweep loadsweep reports under ``sweeps``.

    ``defense_rate_s`` is the admission rate limit imposed on the
    attacker in the defended sweep; the default contracts it to 10% of
    the clean capacity estimate.
    """
    flooded = hostile_mix(mix, weight=attacker_weight)
    clean_capacity = estimate_capacity_rate(mix, oracle, usable_nodes)
    flooded_capacity = estimate_capacity_rate(flooded, oracle, usable_nodes)
    # Same absolute req/s grid for every sweep: rescale the hostile
    # sweeps' multipliers by the capacity ratio.
    rescale = clean_capacity / flooded_capacity
    hostile_multipliers = tuple(m * rescale for m in multipliers)
    if defense_rate_s is None:
        defense_rate_s = 0.1 * clean_capacity
    common = {
        "arrival_kind": arrival_kind,
        "seed": seed,
        "horizon_s": horizon_s,
        "policy_name": policy_name,
    }
    clean = run_load_sweep(
        usable_nodes, mix, oracle, multipliers=multipliers, **common
    )
    attacked = run_load_sweep(
        usable_nodes, flooded, oracle, multipliers=hostile_multipliers, **common
    )
    defended = run_load_sweep(
        usable_nodes,
        flooded,
        oracle,
        multipliers=hostile_multipliers,
        admission=AdmissionController(
            tenant_rate_limits={ATTACKER_TENANT: defense_rate_s}
        ),
        **common,
    )
    return {
        "schema": ATTACK_SWEEP_SCHEMA,
        "attack": {
            "tenant": ATTACKER_TENANT,
            "weight": attacker_weight,
            "defense_rate_s": defense_rate_s,
            "clean_capacity_rate_s": clean_capacity,
            "flooded_capacity_rate_s": flooded_capacity,
        },
        "clean": _knee_summary(clean),
        "attacked": _knee_summary(attacked),
        "defended": _knee_summary(defended),
        "sweeps": {"clean": clean, "attacked": attacked, "defended": defended},
    }
