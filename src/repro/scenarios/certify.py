"""Detect-or-survive certification of adversarial scenarios.

:func:`certify` runs one ``(scenario, app)`` cell: build the app, run it
under the scenario's :class:`~repro.scenarios.adversary.AdversaryPlan`
through the checkpoint/restart recovery driver, and classify what
happened:

* **detected** — a defense layer flagged the attack: the causality
  layer's deadlock diagnosis (``deadlock``), the reliable transport's
  retransmission budget (``transport``), a receive timeout (``timeout``),
  an exhausted restart budget (``crash``), a crash of the hostile data
  inside the program itself (``runtime-error``), the static linter
  (``lint``), or the value-transparency oracle — the recovered result's
  sha256 digest differs from the clean reference (``value-transparency``).
* **survived** — the run completed with results digest-identical to the
  clean fault-free reference (``clean``, or ``recovery`` when
  checkpoint/restart cycles were needed).

Silent corruption cannot be classified: every completed run is digested
against the reference, so wrong values are always *detected*.  What the
certification matrix additionally enforces (via each scenario's
``expected`` map) is that an attack meant to be survivable really does
come back bitwise clean — a survivable scenario that corrupts is a
certification failure, not a reclassification.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.errors import (
    DeadlockError,
    RankCrashError,
    RecvTimeoutError,
    ReproError,
    TransportError,
)
from repro.scenarios.adversary import AdversaryPlan
from repro.scenarios.registry import (
    APPS,
    NRANKS,
    SCENARIOS,
    HOSTILE_SOURCE,
    ScenarioDef,
    build_app,
    build_machine,
)

__all__ = [
    "Certification",
    "CertificationError",
    "result_digest",
    "clean_reference_digest",
    "certify",
    "certify_matrix",
    "check_expected",
]


class CertificationError(ReproError):
    """A scenario's certified verdict contradicts its registered one."""


def _feed(h, obj) -> None:
    if obj is None:
        h.update(b"N")
    elif isinstance(obj, np.ndarray):
        h.update(b"A")
        h.update(str(obj.dtype).encode())
        h.update(str(obj.shape).encode())
        h.update(np.ascontiguousarray(obj).tobytes())
    elif isinstance(obj, (bool, int, float, complex, str, np.generic)):
        h.update(repr(obj).encode())
    elif isinstance(obj, bytes):
        h.update(b"B")
        h.update(obj)
    elif isinstance(obj, (list, tuple)):
        h.update(b"L")
        for item in obj:
            _feed(h, item)
        h.update(b"l")
    elif isinstance(obj, dict):
        h.update(b"D")
        for key in sorted(obj, key=repr):
            _feed(h, key)
            _feed(h, obj[key])
        h.update(b"d")
    else:
        raise TypeError(f"undigestable object {type(obj)!r}")


def result_digest(results) -> str:
    """sha256 over the per-rank return values (the value-transparency
    oracle: two runs digest equal iff their results are byte-identical)."""
    h = hashlib.sha256()
    _feed(h, results)
    return h.hexdigest()


@dataclass(frozen=True)
class Certification:
    """The certified outcome of one ``(scenario, app, seed, placement)``."""

    scenario_id: str
    app: str
    seed: int
    placement: int
    verdict: str  # "detected" | "survived"
    layer: str
    detail: str
    attacks: int
    restarts: int
    digest: str  # result digest ("" when the run never completed)
    reference_digest: str

    @property
    def key(self) -> tuple:
        return (self.scenario_id, self.app, self.seed, self.placement)


# Clean fault-free references, cached per (app, nranks): the value
# oracle and the non-adversarial byte-identity pins both read these.
_REFERENCE_CACHE: dict = {}


def _reference(app: str, nranks: int = NRANKS):
    """Fault-free reference Execution for ``app`` (cached)."""
    from repro.runtime.exec import run_program

    key = (app, nranks)
    cached = _REFERENCE_CACHE.get(key)
    if cached is None:
        program, args, kwargs = build_app(app, nranks)
        cached = run_program(build_machine(nranks), program, *args, **kwargs)
        _REFERENCE_CACHE[key] = cached
    return cached


def clean_reference_digest(app: str, nranks: int = NRANKS) -> str:
    """Digest of the fault-free run of ``app`` — the byte-identity pin."""
    return result_digest(_reference(app, nranks).run.results)


def _certify_static(scenario: ScenarioDef, seed: int) -> Certification:
    """Certify a static scenario: the linter must flag the hostile source."""
    from repro.analysis import lint_sources

    report = lint_sources({"hostile_rank": HOSTILE_SOURCE})
    findings = report.findings
    if findings:
        rules = sorted({f.rule_id for f in findings})
        verdict, layer = "detected", "lint"
        detail = f"{len(findings)} finding(s): {', '.join(rules)}"
    else:  # pragma: no cover - would be a linter regression
        verdict, layer = "survived", "clean"
        detail = "linter found nothing"
    return Certification(
        scenario_id=scenario.scenario_id,
        app="static",
        seed=seed,
        placement=-1,
        verdict=verdict,
        layer=layer,
        detail=detail,
        attacks=len(findings),
        restarts=0,
        digest="",
        reference_digest="",
    )


def certify(
    scenario: ScenarioDef,
    app: str = "wavelet",
    *,
    seed: int = 0,
    placement: int | None = None,
    nranks: int = NRANKS,
    max_restarts: int = 8,
) -> Certification:
    """Run one certification cell and classify detect-or-survive.

    ``placement`` moves the adversary to another rank (the fuzzer's
    placement axis); ``None`` keeps the scenario's registered placement.
    """
    from repro.runtime.exec import run_program

    if scenario.kind == "static":
        return _certify_static(scenario, seed)
    placed = scenario if placement is None else scenario.placed(placement)
    adversary_rank = placed.adversary.rank
    program, args, kwargs = build_app(app, nranks)
    plan = AdversaryPlan(seed, placed.adversary)
    reference_digest = clean_reference_digest(app, nranks)
    digest = ""
    restarts = 0
    try:
        outcome = run_program(
            build_machine(nranks),
            program,
            *args,
            faults=plan,
            max_restarts=max_restarts,
            **kwargs,
        )
    except DeadlockError as exc:
        from repro.machines.causality import diagnose_deadlock

        report = diagnose_deadlock(exc)
        verdict, layer = "detected", "deadlock"
        detail = (
            f"wait-for cycle {report.cycle}" if report.cycle
            else f"starvation: {sorted(exc.waiting)} blocked"
        )
    except TransportError as exc:
        verdict, layer, detail = "detected", "transport", str(exc)
    except RecvTimeoutError as exc:
        verdict, layer, detail = "detected", "timeout", str(exc)
    except RankCrashError as exc:
        verdict, layer = "detected", "crash"
        detail = f"restart budget exhausted at rank {exc.rank}"
    except ReproError as exc:
        verdict, layer = "detected", "runtime-error"
        detail = f"{type(exc).__name__}: {exc}"
    except Exception as exc:
        # Hostile data crashing the rank program itself (shape errors,
        # key errors, ...) is a loud failure, not silent corruption.
        verdict, layer = "detected", "runtime-error"
        detail = f"{type(exc).__name__}: {exc}"
    else:
        digest = result_digest(outcome.run.results)
        restarts = outcome.restarts
        if digest == reference_digest:
            verdict = "survived"
            layer = "recovery" if restarts else "clean"
            detail = (
                f"recovered through {restarts} restart(s), digest-identical"
                if restarts
                else "completed digest-identical to the clean reference"
            )
        else:
            verdict, layer = "detected", "value-transparency"
            detail = "recovered results differ from the clean reference digest"
    return Certification(
        scenario_id=placed.scenario_id,
        app=app,
        seed=seed,
        placement=adversary_rank,
        verdict=verdict,
        layer=layer,
        detail=detail,
        attacks=plan.attacks_fired,
        restarts=restarts,
        digest=digest,
        reference_digest=reference_digest,
    )


def check_expected(cert: Certification, scenario: ScenarioDef) -> None:
    """Raise :class:`CertificationError` when a certified verdict
    contradicts the scenario's registered expectation (in particular: a
    survivable scenario that came back corrupted)."""
    expected = scenario.expected.get(cert.app)
    if expected is None:
        return
    if (cert.verdict, cert.layer) != tuple(expected):
        raise CertificationError(
            f"{scenario.scenario_id} x {cert.app}: certified "
            f"{cert.verdict}/{cert.layer}, registered expectation is "
            f"{expected[0]}/{expected[1]} — {cert.detail}"
        )


def certify_matrix(
    scenarios=SCENARIOS,
    apps=APPS,
    *,
    seed: int = 0,
    nranks: int = NRANKS,
    enforce: bool = False,
) -> list:
    """Certify every registered (scenario x app) cell, registry order.

    With ``enforce=True`` a verdict contradicting the registry raises
    :class:`CertificationError` instead of being returned quietly.
    """
    certifications = []
    for scenario in scenarios:
        cell_apps = ("static",) if scenario.kind == "static" else apps
        for app in cell_apps:
            cert = certify(scenario, app, seed=seed, nranks=nranks)
            if enforce:
                check_expected(cert, scenario)
            certifications.append(cert)
    return certifications
