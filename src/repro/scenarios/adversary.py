"""Hostile-rank adversary overlays for the SPMD engine.

An :class:`AdversaryPlan` wraps a base
:class:`~repro.machines.faults.plan.FaultPlan` and adds *intentional*
misbehavior on top of the random fault machinery: one hostile rank whose
outgoing traffic is withheld, jammed, duplicated as junk floods, poisoned
with crafted-but-plausible values, replayed stale, delayed out of order,
or (for the straggler cartel) whose coalition slows its compute down.

Like the fault plan underneath it, every adversary decision is a *pure
function* of ``(seed, config)``: the attack-or-not draw for a message is
keyed by the splitmix64 hash of ``(seed, behavior domain, src, dst, tag,
per-channel ordinal)``.  The per-channel ordinal follows the sender's
program order, so decisions are independent of global event interleaving
(arrival order at the receiver, tracing on or off) — the property
``tests/test_scenarios_property.py`` certifies.  A disjoint salt keeps
the adversary's draws out of the fault plan's hash domains, so layering
an adversary never perturbs the random-fault decisions either.

The engine consults the overlay through one optional hook:
``intercept_send(src, dst, tag, payload, now_s)`` returning an
:class:`AdversaryAction` (or ``None`` for an unmolested send).  Plans
without the hook — every plain ``FaultPlan`` — take the zero-cost path.

An ``AdversaryPlan`` instance carries per-run channel state (ordinals,
replay memory) and must be constructed fresh per run, exactly like the
contention network machine.  ``without_crash`` (the recovery driver's
repair hook) returns a fresh overlay sharing the accumulated attack
stats, so restarted attempts re-derive their decisions deterministically
from ordinal zero.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigurationError
from repro.machines.engine import _copy_payload
from repro.machines.faults.plan import FaultConfig, FaultPlan, _hash01
from repro.machines.tags import ADVERSARY_SPAM, COLLECTIVE_TAG_BASE

__all__ = [
    "BEHAVIORS",
    "AdversaryConfig",
    "AdversaryAction",
    "AdversaryPlan",
]

#: The attack behaviors an adversary config can select.
BEHAVIORS = (
    "withhold",  # selective silence: eat outgoing messages entirely
    "jam",  # wire-level loss: reliable transport retries then raises
    "spam",  # tag-flood: junk copies burn wire time past admission
    "poison",  # crafted-but-plausible value perturbation
    "replay",  # stale duplicate of the channel's previous payload
    "reorder",  # cross-channel delivery delay
    "cartel",  # coalition compute slowdown (straggler cartel)
    "byzantine",  # poisoning restricted to collective-band traffic
)

# Hash-domain separators, salted away from the fault plan's domains
# (1..10 in repro.machines.faults.plan) so overlay draws can never
# collide with random-fault draws for the same seed.
_ADV_SALT = 0xAD7E_25A7_1E5C_E11A
_D_FIRE, _D_POISON_IDX, _D_POISON_SIGN, _D_DELAY_AMT = 101, 102, 103, 104


@dataclass(frozen=True)
class AdversaryConfig:
    """Static description of one hostile-rank behavior.

    ``rank`` is the adversary's placement; ``victims`` restricts which
    destination ranks are attacked (empty = every peer).  ``rate`` is the
    per-eligible-message attack probability; ``window`` gates attacks to
    a virtual-time interval.  The remaining knobs parameterize individual
    behaviors (poison ``magnitude``, ``spam_copies``/``spam_nbytes``,
    reorder ``delay_s``, cartel ``accomplices``/``slowdown``).
    """

    behavior: str
    rank: int = 1
    victims: tuple = ()
    rate: float = 1.0
    window: tuple = (0.0, float("inf"))
    magnitude: float = 0.25
    spam_copies: int = 3
    spam_nbytes: int = 4096
    delay_s: float = 2e-3
    accomplices: tuple = ()
    slowdown: float = 4.0

    def __post_init__(self) -> None:
        if self.behavior not in BEHAVIORS:
            raise ConfigurationError(
                f"unknown adversary behavior {self.behavior!r}; "
                f"expected one of {BEHAVIORS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(f"rate must be in [0, 1], got {self.rate}")
        if self.rank < 0:
            raise ConfigurationError(f"adversary rank must be >= 0, got {self.rank}")
        t0, t1 = self.window
        if t0 < 0.0 or t1 < t0:
            raise ConfigurationError(f"window needs 0 <= t0 <= t1, got {self.window}")
        if self.magnitude <= 0.0:
            raise ConfigurationError(f"magnitude must be > 0, got {self.magnitude}")
        if self.spam_copies < 1 or self.spam_nbytes < 1:
            raise ConfigurationError("need spam_copies >= 1 and spam_nbytes >= 1")
        if self.delay_s < 0.0:
            raise ConfigurationError(f"delay_s must be >= 0, got {self.delay_s}")
        if self.slowdown < 1.0:
            raise ConfigurationError(f"slowdown must be >= 1, got {self.slowdown}")

    @property
    def cartel_ranks(self) -> tuple:
        """The slowdown coalition: the adversary plus its accomplices."""
        return tuple(sorted({self.rank, *self.accomplices}))


@dataclass(frozen=True)
class AdversaryAction:
    """What the overlay does to one intercepted send."""

    deliver: bool = True
    jam: bool = False
    replace: bool = False
    payload: object = None
    extra_delay_s: float = 0.0
    replay: bool = False
    replay_payload: object = None
    spam: tuple = ()  # ((tag, payload, nbytes), ...)


def _poison_value(obj, seed: int, parts: tuple, magnitude: float):
    """Perturb the first plausibly-poisonable float leaf of ``obj``.

    Returns ``(poisoned, changed)``.  Arrays get one hash-chosen element
    nudged by ``magnitude`` relative to its own scale (a sneaky
    single-sample error, not random garbage); float scalars get a
    proportional skew.  Integers, strings, and empty containers pass
    through untouched so protocol plumbing (counts, indices) keeps
    working — the corruption must *look* plausible to survive en route.
    """
    if isinstance(obj, np.ndarray):
        if obj.size and np.issubdtype(obj.dtype, np.floating):
            out = np.array(obj, copy=True)
            flat = out.reshape(-1)
            idx = int(_hash01(seed, _D_POISON_IDX, *parts) * flat.size) % flat.size
            sign = 1.0 if _hash01(seed, _D_POISON_SIGN, *parts) < 0.5 else -1.0
            flat[idx] = flat[idx] + sign * magnitude * (abs(float(flat[idx])) + 1.0)
            return out, True
        return obj, False
    if isinstance(obj, float):
        return obj * (1.0 + magnitude) + magnitude * 1e-6, True
    if isinstance(obj, tuple):
        items = list(obj)
        for i, item in enumerate(items):
            poisoned, changed = _poison_value(item, seed, parts + (i,), magnitude)
            if changed:
                items[i] = poisoned
                return tuple(items), True
        return obj, False
    if isinstance(obj, list):
        for i, item in enumerate(obj):
            poisoned, changed = _poison_value(item, seed, parts + (i,), magnitude)
            if changed:
                out_list = list(obj)
                out_list[i] = poisoned
                return out_list, True
        return obj, False
    if isinstance(obj, dict):
        for i, key in enumerate(sorted(obj, key=repr)):
            poisoned, changed = _poison_value(obj[key], seed, parts + (i,), magnitude)
            if changed:
                out_dict = dict(obj)
                out_dict[key] = poisoned
                return out_dict, True
        return obj, False
    return obj, False


def _fresh_stats() -> dict:
    return {
        "withheld": 0,
        "jammed": 0,
        "spammed": 0,
        "poisoned": 0,
        "replayed": 0,
        "reordered": 0,
        "cartel": 0,
    }


class AdversaryPlan:
    """A fault plan with one hostile rank layered on top.

    Delegates the entire :class:`FaultPlan` oracle interface to the
    wrapped base plan unchanged (same seed, same hash keying — layering
    the overlay never alters a random-fault decision) and adds the
    engine's ``intercept_send`` hook for the adversary behaviors.
    """

    def __init__(
        self,
        seed: int,
        adversary: AdversaryConfig,
        faults: FaultConfig | None = None,
        *,
        base: FaultPlan | None = None,
        stats: dict | None = None,
    ) -> None:
        self.seed = int(seed)
        self.adversary = adversary
        self.base = base if base is not None else FaultPlan(seed, faults)
        self.stats = stats if stats is not None else _fresh_stats()
        # Per-run channel state: (src, dst, tag) -> sends seen / last payload.
        self._ordinals: dict = {}
        self._replay_memory: dict = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AdversaryPlan(seed={self.seed}, "
            f"behavior={self.adversary.behavior!r}, rank={self.adversary.rank})"
        )

    # -- FaultPlan delegation (bitwise-unchanged fault oracle) --------------

    @property
    def config(self) -> FaultConfig:
        return self.base.config

    def message_fate(self, msg_index: int, attempt: int = 0):
        return self.base.message_fate(msg_index, attempt)

    def crash_time(self, rank: int):
        return self.base.crash_time(rank)

    @property
    def crash_schedule(self) -> dict:
        return self.base.crash_schedule

    def link_factor(self, node_a: int, node_b: int, t: float) -> float:
        return self.base.link_factor(node_a, node_b, t)

    @property
    def has_link_slowdowns(self) -> bool:
        return self.base.has_link_slowdowns

    def straggler_factor(self, rank: int, t: float) -> float:
        factor = self.base.straggler_factor(rank, t)
        adv = self.adversary
        if (
            adv.behavior == "cartel"
            and rank in adv.cartel_ranks
            and adv.window[0] <= t < adv.window[1]
        ):
            factor *= adv.slowdown
            self.stats["cartel"] = 1
        return factor

    def without_crash(self, rank: int) -> "AdversaryPlan":
        """Repaired plan for a restarted attempt: fresh channel state
        (the restart replays sends from ordinal zero), shared stats."""
        return AdversaryPlan(
            self.seed,
            self.adversary,
            base=self.base.without_crash(rank),
            stats=self.stats,
        )

    # -- the engine hook ----------------------------------------------------

    def _fires(self, src: int, dst: int, tag: int, ordinal: int) -> bool:
        adv = self.adversary
        if adv.rate >= 1.0:
            return True
        return (
            _hash01(self.seed ^ _ADV_SALT, _D_FIRE, src, dst, tag, ordinal)
            < adv.rate
        )

    def intercept_send(
        self, src: int, dst: int, tag: int, payload, now_s: float
    ) -> AdversaryAction | None:
        """The engine's per-send consultation; ``None`` = leave it alone."""
        adv = self.adversary
        key = (src, dst, tag)
        ordinal = self._ordinals.get(key, 0)
        self._ordinals[key] = ordinal + 1
        if src != adv.rank:
            return None
        previous = None
        if adv.behavior == "replay":
            previous = self._replay_memory.get(key)
            self._replay_memory[key] = _copy_payload(payload)
        if adv.victims and dst not in adv.victims:
            return None
        if not adv.window[0] <= now_s < adv.window[1]:
            return None
        if not self._fires(src, dst, tag, ordinal):
            return None
        draw_key = (src, dst, tag, ordinal)
        if adv.behavior == "withhold":
            self.stats["withheld"] += 1
            return AdversaryAction(deliver=False)
        if adv.behavior == "jam":
            self.stats["jammed"] += 1
            return AdversaryAction(deliver=False, jam=True)
        if adv.behavior == "spam":
            junk = bytes(adv.spam_nbytes)
            flood = tuple(
                (ADVERSARY_SPAM, junk, adv.spam_nbytes)
                for _ in range(adv.spam_copies)
            )
            self.stats["spammed"] += adv.spam_copies
            return AdversaryAction(spam=flood)
        if adv.behavior in ("poison", "byzantine"):
            if adv.behavior == "byzantine" and tag < COLLECTIVE_TAG_BASE:
                return None
            poisoned, changed = _poison_value(
                payload, self.seed ^ _ADV_SALT, draw_key, adv.magnitude
            )
            if not changed:
                return None
            self.stats["poisoned"] += 1
            return AdversaryAction(replace=True, payload=poisoned)
        if adv.behavior == "replay":
            if previous is None:
                return None
            self.stats["replayed"] += 1
            return AdversaryAction(replay=True, replay_payload=previous)
        if adv.behavior == "reorder":
            jitter = _hash01(self.seed ^ _ADV_SALT, _D_DELAY_AMT, *draw_key)
            self.stats["reordered"] += 1
            return AdversaryAction(extra_delay_s=adv.delay_s * (0.5 + jitter))
        # "cartel" attacks compute time, not messages.
        return None

    @property
    def attacks_fired(self) -> int:
        """Total adversary interventions so far (all behaviors)."""
        return sum(self.stats[key] for key in sorted(self.stats))
