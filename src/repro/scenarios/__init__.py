"""Adversarial scenario suite: hostile ranks, certification, fuzzing.

The paper's SPMD programs assume every rank cooperates; this package
drops that assumption.  It layers *intentional* misbehavior — selective
silence, wire jamming, tag floods, crafted payload poisoning, stale
replay, hostile reordering, straggler cartels, Byzantine reducers — on
top of the random fault machinery (:mod:`repro.machines.faults`), and
certifies that every registered attack is either **detected** by a
defense layer (causality deadlock diagnosis, reliable-transport budget,
the static linter, the value-transparency digest oracle) or **survived**
bitwise (results digest-identical to the clean reference, through
checkpoint/restart recovery if needed).  Silent corruption is the one
outcome the suite exists to rule out.

Layout:

* :mod:`~repro.scenarios.adversary` — the seeded, replay-deterministic
  adversary overlay (:class:`AdversaryPlan` wrapping a ``FaultPlan``).
* :mod:`~repro.scenarios.registry` — stable-id :class:`ScenarioDef`
  entries with expected verdicts per app.
* :mod:`~repro.scenarios.certify` — the detect-or-survive driver.
* :mod:`~repro.scenarios.fuzz` — the (scenario, seed, placement) fuzzer
  and the persisted ``repro.scenarios.findings/v1`` corpus.
* :mod:`~repro.scenarios.service_attack` — hostile-tenant floods against
  the :mod:`repro.service` loop and the attacked-vs-clean knee.

CLI: ``python -m repro attack`` (single scenario, ``--fuzz``,
``--replay FINDING_ID``, ``--knee``).
"""

from repro.scenarios.adversary import (
    BEHAVIORS,
    AdversaryAction,
    AdversaryConfig,
    AdversaryPlan,
)
from repro.scenarios.certify import (
    Certification,
    CertificationError,
    certify,
    certify_matrix,
    check_expected,
    clean_reference_digest,
    result_digest,
)
from repro.scenarios.fuzz import (
    DEFAULT_PLACEMENTS,
    DEFAULT_SEEDS,
    FINDINGS_SCHEMA,
    empty_corpus,
    finding_from_certification,
    finding_id,
    load_corpus,
    merge_findings,
    replay_finding,
    run_fuzz,
    validate_findings,
    write_corpus,
)
from repro.scenarios.registry import (
    APPS,
    CHECKPOINT_INTERVAL,
    NRANKS,
    SCENARIOS,
    ScenarioDef,
    build_app,
    build_machine,
    get_scenario,
    scenario_ids,
)
from repro.scenarios.service_attack import (
    ATTACK_SWEEP_SCHEMA,
    ATTACKER_TENANT,
    attacked_sweep,
    hostile_mix,
)

__all__ = [
    # adversary
    "BEHAVIORS",
    "AdversaryAction",
    "AdversaryConfig",
    "AdversaryPlan",
    # registry
    "APPS",
    "CHECKPOINT_INTERVAL",
    "NRANKS",
    "SCENARIOS",
    "ScenarioDef",
    "build_app",
    "build_machine",
    "get_scenario",
    "scenario_ids",
    # certification
    "Certification",
    "CertificationError",
    "certify",
    "certify_matrix",
    "check_expected",
    "clean_reference_digest",
    "result_digest",
    # fuzzing / corpus
    "DEFAULT_PLACEMENTS",
    "DEFAULT_SEEDS",
    "FINDINGS_SCHEMA",
    "empty_corpus",
    "finding_from_certification",
    "finding_id",
    "load_corpus",
    "merge_findings",
    "replay_finding",
    "run_fuzz",
    "validate_findings",
    "write_corpus",
    # service attack
    "ATTACK_SWEEP_SCHEMA",
    "ATTACKER_TENANT",
    "attacked_sweep",
    "hostile_mix",
]
