"""Seeded scenario fuzzer and its persisted findings corpus.

:func:`run_fuzz` sweeps ``(scenario, app, seed, placement)`` tuples
through the certification driver.  Every certified cell is a *finding*;
:func:`merge_findings` folds a fuzz run into a corpus document keeping
only *novel* ones — the first observation of each
``(scenario, app, verdict, layer)`` signature — so the corpus stays a
compact census of observed behaviors rather than a log of every run.

The corpus (``repro.scenarios.findings/v1``) is schema-validated JSON;
``tests/data/scenario_findings.json`` commits one, and
:func:`replay_finding` re-certifies any persisted entry from its
``(scenario, seed, placement)`` key, asserting the verdict, detecting
layer, attack count, and result digest all reproduce bitwise — the
regression loop behind ``python -m repro attack --replay``.
"""

from __future__ import annotations

import json

from repro.errors import ConfigurationError
from repro.scenarios.certify import Certification, certify
from repro.scenarios.registry import APPS, NRANKS, SCENARIOS, get_scenario

__all__ = [
    "FINDINGS_SCHEMA",
    "DEFAULT_SEEDS",
    "DEFAULT_PLACEMENTS",
    "finding_id",
    "finding_from_certification",
    "run_fuzz",
    "empty_corpus",
    "merge_findings",
    "validate_findings",
    "load_corpus",
    "write_corpus",
    "replay_finding",
]

FINDINGS_SCHEMA = "repro.scenarios.findings/v1"

#: Bounded CI-sized sweep axes (the scenario-fuzz job's defaults).
DEFAULT_SEEDS = (0, 1)
DEFAULT_PLACEMENTS = (1, 2)

_FINDING_FIELDS = {
    "id": str,
    "scenario": str,
    "app": str,
    "seed": int,
    "placement": int,
    "verdict": str,
    "layer": str,
    "attacks": int,
    "restarts": int,
    "digest": str,
    "reference_digest": str,
}


def finding_id(scenario_id: str, app: str, seed: int, placement: int) -> str:
    """Stable id a finding replays from: ``scenario/app/sSEED/rPLACEMENT``."""
    return f"{scenario_id}/{app}/s{seed}/r{placement}"


def finding_from_certification(cert: Certification) -> dict:
    """Serialize one certification as a corpus finding."""
    return {
        "id": finding_id(cert.scenario_id, cert.app, cert.seed, cert.placement),
        "scenario": cert.scenario_id,
        "app": cert.app,
        "seed": cert.seed,
        "placement": cert.placement,
        "verdict": cert.verdict,
        "layer": cert.layer,
        "attacks": cert.attacks,
        "restarts": cert.restarts,
        "digest": cert.digest,
        "reference_digest": cert.reference_digest,
    }


def run_fuzz(
    scenario_ids=None,
    apps=APPS,
    seeds=DEFAULT_SEEDS,
    placements=DEFAULT_PLACEMENTS,
    *,
    nranks: int = NRANKS,
) -> list:
    """Sweep the (scenario, app, seed, placement) grid; returns findings.

    Static scenarios have no seed/placement axes and certify once.
    """
    scenarios = (
        SCENARIOS
        if scenario_ids is None
        else tuple(get_scenario(sid) for sid in scenario_ids)
    )
    findings = []
    for scenario in scenarios:
        if scenario.kind == "static":
            findings.append(
                finding_from_certification(certify(scenario, seed=0))
            )
            continue
        for app in apps:
            for seed in seeds:
                for placement in placements:
                    cert = certify(
                        scenario,
                        app,
                        seed=seed,
                        placement=placement,
                        nranks=nranks,
                    )
                    findings.append(finding_from_certification(cert))
    return findings


def empty_corpus(nranks: int = NRANKS) -> dict:
    """A fresh, valid corpus document."""
    return {"schema": FINDINGS_SCHEMA, "nranks": nranks, "findings": []}


def _signature(finding: dict) -> tuple:
    return (
        finding["scenario"],
        finding["app"],
        finding["verdict"],
        finding["layer"],
    )


def merge_findings(corpus: dict, findings: list) -> int:
    """Fold ``findings`` into ``corpus``, keeping novel signatures only.

    Novelty is the first observation of a ``(scenario, app, verdict,
    layer)`` signature.  Returns the number of findings added; the
    corpus's finding list stays sorted by id.
    """
    validate_findings(corpus)
    seen = {_signature(f) for f in corpus["findings"]}
    added = 0
    for finding in findings:
        signature = _signature(finding)
        if signature in seen:
            continue
        seen.add(signature)
        corpus["findings"].append(dict(finding))
        added += 1
    corpus["findings"].sort(key=lambda f: f["id"])
    return added


def validate_findings(doc: dict) -> None:
    """Structural validation of a ``repro.scenarios.findings/v1`` doc."""
    if not isinstance(doc, dict):
        raise ConfigurationError("findings corpus must be a JSON object")
    if doc.get("schema") != FINDINGS_SCHEMA:
        raise ConfigurationError(
            f"findings corpus schema must be {FINDINGS_SCHEMA!r}, "
            f"got {doc.get('schema')!r}"
        )
    if not isinstance(doc.get("nranks"), int) or doc["nranks"] < 2:
        raise ConfigurationError("findings corpus needs integer nranks >= 2")
    findings = doc.get("findings")
    if not isinstance(findings, list):
        raise ConfigurationError("findings corpus needs a findings list")
    seen_ids = set()
    for finding in findings:
        if not isinstance(finding, dict):
            raise ConfigurationError("each finding must be a JSON object")
        for field_name, field_type in sorted(_FINDING_FIELDS.items()):
            value = finding.get(field_name)
            if not isinstance(value, field_type) or isinstance(value, bool):
                raise ConfigurationError(
                    f"finding {finding.get('id')!r}: field {field_name!r} "
                    f"must be {field_type.__name__}, got {value!r}"
                )
        if finding["verdict"] not in ("detected", "survived"):
            raise ConfigurationError(
                f"finding {finding['id']!r}: verdict must be "
                f"detected/survived, got {finding['verdict']!r}"
            )
        expected_id = finding_id(
            finding["scenario"], finding["app"], finding["seed"], finding["placement"]
        )
        if finding["id"] != expected_id:
            raise ConfigurationError(
                f"finding id {finding['id']!r} does not match its key "
                f"(expected {expected_id!r})"
            )
        if finding["id"] in seen_ids:
            raise ConfigurationError(f"duplicate finding id {finding['id']!r}")
        seen_ids.add(finding["id"])


def load_corpus(path: str) -> dict:
    """Read and validate a findings corpus from ``path``."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    validate_findings(doc)
    return doc


def write_corpus(path: str, doc: dict) -> None:
    """Validate and write a findings corpus to ``path``."""
    validate_findings(doc)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def replay_finding(finding: dict, *, nranks: int | None = None):
    """Re-certify one persisted finding from its (scenario, seed,
    placement) key.

    Returns ``(certification, mismatches)`` where ``mismatches`` lists
    ``field: persisted -> replayed`` strings; empty means the finding
    reproduced bitwise.
    """
    scenario = get_scenario(finding["scenario"])
    if scenario.kind == "static":
        cert = certify(scenario, seed=finding["seed"])
    else:
        cert = certify(
            scenario,
            finding["app"],
            seed=finding["seed"],
            placement=finding["placement"],
            nranks=nranks if nranks is not None else NRANKS,
        )
    replayed = finding_from_certification(cert)
    mismatches = [
        f"{field_name}: {finding[field_name]!r} -> {replayed[field_name]!r}"
        for field_name in sorted(_FINDING_FIELDS)
        if replayed[field_name] != finding[field_name]
    ]
    return cert, mismatches
