"""Command-line interface: ``python -m repro <command>``.

Thin drivers over the library for running the paper's experiments without
writing code:

``wavelet``
    Decompose a synthetic scene on a chosen machine and report timing and
    the performance budget (optionally a timeline).
``nbody``
    Run the manager-worker Barnes-Hut simulation.
``pic``
    Run the worker-worker PIC simulation.
``workload``
    Characterize the NAS-like suite (centroids, similarity, smoothability).
``table1``
    Regenerate Appendix A Table 1.
``trace``
    Causal analysis of one traced run: wildcard-race certification,
    critical-path lower bound and slack, optional Chrome/Perfetto
    trace-event JSON export (``--out``).
``faults``
    Fault-injection sweep: run an app under seeded message faults,
    stragglers, and crashes with checkpoint/restart recovery, verify the
    recovered output against the fault-free reference, and report the
    overhead-vs-fault-rate table.
``schedule``
    Space-share one machine between several queued jobs through the
    runtime :class:`~repro.runtime.scheduler.Scheduler` (buddy
    power-of-two partitions, FIFO + backfill) and report per-job
    queue-wait/service/turnaround plus makespan and utilization.
``bench``
    Wall-clock kernel benchmark: time the sequential decomposition under
    every registered kernel (conv/lifting/fused/single-loop), cross-check
    the numerics against the conv reference, and write
    ``BENCH_wavelet.json``.  ``--virtual`` reports deterministic virtual
    time through the runtime layer instead.  ``--ratchet BASELINE``
    compares kernel speedups against a committed baseline (including its
    per-PR history trajectory) and fails on regression; ``--history-pr
    ID`` stamps the written document with a trajectory entry.
``serve``
    Multi-tenant service simulation in virtual time: seeded open-loop
    arrivals over a tenant mix, admission control, batching, fair-share
    or FIFO queueing over buddy partitions, p50/p99 steady-state metrics
    (``repro.service.snapshot/v1``).  ``--sweep`` runs the closed-loop
    autopilot across an offered-load grid and reports the saturation
    knee (``repro.service.loadsweep/v1``).
``attack``
    Adversarial scenario suite: certify registered hostile-rank
    scenarios detect-or-survive against the SPMD apps, fuzz the
    (scenario, seed, placement) grid into a persisted findings corpus
    (``--fuzz``), replay persisted findings bitwise (``--replay``), or
    re-measure the service saturation knee under a hostile-tenant
    flood (``--knee``).

Every simulated-machine subcommand goes through the
:mod:`repro.runtime` layer: the flags assemble a
:class:`~repro.runtime.spec.JobSpec` and the registry/executor do the
rest.
"""

from __future__ import annotations

import argparse
import sys

from repro._version import __version__

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Wavelet Decomposition on High-Performance "
        "Computing Systems' (ICPP 1996) and companion JNNIE studies.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    wavelet = sub.add_parser("wavelet", help="parallel wavelet decomposition")
    wavelet.add_argument("--size", type=int, default=512, help="image side (default 512)")
    wavelet.add_argument("--filter", type=int, default=8, choices=(2, 4, 8), dest="filter_length")
    wavelet.add_argument("--levels", type=int, default=1)
    wavelet.add_argument("--procs", type=int, default=32)
    wavelet.add_argument(
        "--machine", default="paragon", choices=("paragon", "t3d", "workstation", "maspar")
    )
    wavelet.add_argument("--placement", default="snake", choices=("snake", "naive"))
    wavelet.add_argument(
        "--kernel", default="conv",
        help="filtering kernel spec: conv, lifting, fused, fused:N, or "
        "single-loop (default conv)",
    )
    wavelet.add_argument("--timeline", action="store_true", help="render an ASCII Gantt chart")

    nbody = sub.add_parser("nbody", help="Barnes-Hut N-body on a simulated machine")
    nbody.add_argument("--bodies", type=int, default=4096)
    nbody.add_argument("--steps", type=int, default=2)
    nbody.add_argument("--procs", type=int, default=16)
    nbody.add_argument("--machine", default="paragon", choices=("paragon", "t3d"))
    nbody.add_argument("--theta", type=float, default=0.6)
    nbody.add_argument("--model", default="manager_worker", choices=("manager_worker", "replicated"))

    pic = sub.add_parser("pic", help="3-D electrostatic PIC on a simulated machine")
    pic.add_argument("--particles", type=int, default=65536)
    pic.add_argument("--grid", type=int, default=32, dest="grid_m")
    pic.add_argument("--steps", type=int, default=2)
    pic.add_argument("--procs", type=int, default=16)
    pic.add_argument("--machine", default="paragon", choices=("paragon", "t3d"))
    pic.add_argument("--global-sum", default="prefix", choices=("prefix", "gssum"))

    workload = sub.add_parser("workload", help="characterize the NAS-like suite")
    workload.add_argument("--scale", type=float, default=1.0)

    sub.add_parser("table1", help="regenerate Appendix A Table 1")

    trace = sub.add_parser(
        "trace", help="causal analysis: races, critical path, Chrome trace export"
    )
    trace.add_argument(
        "--program", default="wavelet", choices=("wavelet", "nbody", "pic")
    )
    trace.add_argument("--size", type=int, default=512, help="image side (wavelet)")
    trace.add_argument("--filter", type=int, default=8, choices=(2, 4, 8), dest="filter_length")
    trace.add_argument("--levels", type=int, default=1)
    trace.add_argument("--bodies", type=int, default=1024, help="bodies (nbody)")
    trace.add_argument("--particles", type=int, default=4096, help="particles (pic)")
    trace.add_argument("--grid", type=int, default=16, dest="grid_m")
    trace.add_argument("--steps", type=int, default=1, help="steps (nbody/pic)")
    trace.add_argument("--procs", type=int, default=16)
    trace.add_argument("--machine", default="paragon", choices=("paragon", "t3d"))
    trace.add_argument("--placement", default="snake", choices=("snake", "naive"))
    trace.add_argument("--out", default=None, help="write Chrome trace-event JSON here")

    faults = sub.add_parser(
        "faults", help="seeded fault-injection sweep with checkpoint/restart recovery"
    )
    faults.add_argument(
        "--program", default="wavelet", choices=("wavelet", "nbody", "pic")
    )
    faults.add_argument("--size", type=int, default=128, help="image side (wavelet)")
    faults.add_argument("--filter", type=int, default=4, choices=(2, 4, 8), dest="filter_length")
    faults.add_argument("--levels", type=int, default=2)
    faults.add_argument("--bodies", type=int, default=256, help="bodies (nbody)")
    faults.add_argument("--particles", type=int, default=1024, help="particles (pic)")
    faults.add_argument("--grid", type=int, default=8, dest="grid_m")
    faults.add_argument("--steps", type=int, default=3, help="steps (nbody/pic)")
    faults.add_argument("--procs", type=int, default=8)
    faults.add_argument("--machine", default="paragon", choices=("paragon", "t3d"))
    faults.add_argument("--seed", type=int, default=0, help="fault-plan seed")
    faults.add_argument(
        "--rates",
        default="0.0,0.05,0.1,0.2,0.4",
        help="comma-separated fault rates to sweep",
    )
    faults.add_argument(
        "--checkpoint-interval", type=int, default=1,
        help="steps/levels between coordinated checkpoints (0 disables)",
    )
    faults.add_argument(
        "--max-restarts", type=int, default=8,
        help="restart budget per scenario before giving up",
    )

    schedule = sub.add_parser(
        "schedule", help="space-share one machine between several queued jobs"
    )
    schedule.add_argument(
        "--machine", default="paragon", choices=("paragon", "t3d", "workstation")
    )
    schedule.add_argument(
        "--job",
        action="append",
        dest="jobs",
        metavar="PROG:PROCS",
        help="queued job as program:procs (wavelet/nbody/pic/workload); "
        "repeatable; default two 32-rank wavelet jobs",
    )
    schedule.add_argument("--size", type=int, default=256, help="image side (wavelet)")
    schedule.add_argument("--filter", type=int, default=4, choices=(2, 4, 8), dest="filter_length")
    schedule.add_argument("--levels", type=int, default=2)
    schedule.add_argument("--bodies", type=int, default=256, help="bodies (nbody)")
    schedule.add_argument("--particles", type=int, default=1024, help="particles (pic)")
    schedule.add_argument("--grid", type=int, default=8, dest="grid_m")
    schedule.add_argument("--steps", type=int, default=2, help="steps (nbody/pic)")
    schedule.add_argument(
        "--seed", type=int, default=0,
        help="arrival-stream seed (with --arrival)",
    )
    schedule.add_argument(
        "--arrival", default=None, metavar="KIND:RATE",
        help="stagger submissions with a seeded arrival process "
        "(poisson|bursty|diurnal, e.g. poisson:2.0); default: all at t=0",
    )
    schedule.add_argument(
        "--count", type=int, default=0,
        help="with --arrival: total submissions, cycling the --job pool "
        "(default: one per --job entry)",
    )
    schedule.add_argument(
        "--policy", default="fifo", choices=("fifo", "fair"),
        help="queue policy (default fifo)",
    )
    schedule.add_argument(
        "--collective", default="rdouble", choices=("rdouble", "rabenseifner"),
        help="all-reduce schedule for programs with global reductions "
        "(pic/workload; default rdouble)",
    )

    bench = sub.add_parser(
        "bench",
        help="wall-clock kernel benchmark (conv vs lifting vs fused vs "
        "single-loop)",
    )
    bench.add_argument(
        "--virtual", action="store_true",
        help="report deterministic virtual time through the runtime layer "
        "(parallel SPMD run on a simulated machine) instead of wall clock",
    )
    bench.add_argument(
        "--procs", type=int, default=8,
        help="simulated rank count for --virtual (default 8)",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="CI-sized case subset (256^2 only, fewer repeats)",
    )
    bench.add_argument("--warmup", type=int, default=1, help="untimed iterations per pair")
    bench.add_argument("--repeats", type=int, default=5, help="timed iterations per pair")
    bench.add_argument(
        "--trim", type=int, default=1,
        help="extremes dropped from each end before averaging",
    )
    bench.add_argument("--seed", type=int, default=2024, help="input image RNG seed")
    bench.add_argument(
        "--out", default="BENCH_wavelet.json",
        help="output JSON path (default BENCH_wavelet.json)",
    )
    bench.add_argument(
        "--ratchet", default=None, metavar="BASELINE",
        help="compare kernel speedups against a committed baseline JSON "
        "and exit 1 on regression beyond tolerance",
    )
    bench.add_argument(
        "--ratchet-tolerance", type=float, default=0.25,
        help="allowed fractional speedup regression for --ratchet "
        "(default 0.25)",
    )
    bench.add_argument(
        "--history-pr", default=None, metavar="ID",
        help="stamp the written document with a per-PR perf-trajectory "
        "entry under this id, carrying forward the history of the "
        "--ratchet baseline (or of an existing --out file)",
    )
    bench.add_argument(
        "--engine", action="store_true",
        help="engine rank-scaling sweep (indexed vs linear matcher on "
        "1k-4k-rank meshes) instead of the kernel benchmark; writes "
        "BENCH_engine.json unless --out is given",
    )
    bench.add_argument(
        "--ranks", default=None, metavar="R1,R2,...",
        help="rank counts for --engine (default 64,256,1024,4096; "
        "--quick uses 1024 only)",
    )
    bench.add_argument(
        "--rounds", type=int, default=2,
        help="wavelet/collect rounds per --engine case (default 2)",
    )

    serve = sub.add_parser(
        "serve", help="multi-tenant service simulation (virtual time)"
    )
    serve.add_argument(
        "--machine", default="paragon", choices=("paragon", "t3d", "workstation")
    )
    serve.add_argument("--mix", default="default", help="tenant mix name")
    serve.add_argument(
        "--arrival", default="poisson", metavar="KIND[:RATE]",
        help="arrival process: poisson|bursty|diurnal, optional rate/s "
        "(default poisson at --load x capacity)",
    )
    serve.add_argument(
        "--load", type=float, default=0.7,
        help="offered load as a fraction of estimated capacity, used when "
        "--arrival carries no rate (default 0.7)",
    )
    serve.add_argument("--horizon", type=float, default=60.0, dest="horizon_s",
                       help="arrival horizon in virtual seconds (default 60)")
    serve.add_argument("--seed", type=int, default=0, help="simulation seed")
    serve.add_argument(
        "--policy", default="fair", choices=("fifo", "fair"),
        help="queue policy (default fair = weighted fair-share)",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=0,
        help="shed arrivals beyond this total backlog (0 = off)",
    )
    serve.add_argument(
        "--tenant-backlog", type=int, default=0,
        help="shed arrivals beyond this per-tenant backlog (0 = off)",
    )
    serve.add_argument(
        "--sweep", action="store_true",
        help="closed-loop load sweep: find the saturation knee",
    )
    serve.add_argument(
        "--sweep-loads", default=None, metavar="M1,M2,...",
        help="ascending offered-load multipliers for --sweep "
        "(default 0.25,0.5,0.75,1.0,1.5,2.0)",
    )
    serve.add_argument(
        "--collective", default="rdouble", choices=("rdouble", "rabenseifner"),
        help="all-reduce schedule for templates with global reductions "
        "(default rdouble)",
    )
    serve.add_argument(
        "--format", choices=("human", "json"), default="human", dest="fmt",
        help="report format (default human)",
    )
    serve.add_argument("--out", default=None, help="also write the JSON report here")

    attack = sub.add_parser(
        "attack", help="adversarial scenarios: certify, fuzz, replay"
    )
    attack.add_argument(
        "scenario", nargs="?", default=None,
        help="scenario id to certify (default: the full registered matrix)",
    )
    attack.add_argument(
        "--app", default=None, choices=("wavelet", "nbody", "pic"),
        help="restrict certification to one target app (default: all)",
    )
    attack.add_argument("--seed", type=int, default=0, help="adversary seed")
    attack.add_argument(
        "--placement", type=int, default=None,
        help="move the adversary to this rank (default: as registered)",
    )
    attack.add_argument(
        "--list", action="store_true",
        help="list registered scenarios with expected verdicts and exit",
    )
    attack.add_argument(
        "--fuzz", action="store_true",
        help="sweep the (scenario, app, seed, placement) grid",
    )
    attack.add_argument(
        "--seeds", default=None, metavar="S1,S2,...",
        help="fuzz seeds (default 0,1)",
    )
    attack.add_argument(
        "--placements", default=None, metavar="R1,R2,...",
        help="fuzz adversary placements (default 1,2)",
    )
    attack.add_argument(
        "--corpus", default=None, metavar="PATH",
        help="findings corpus: --fuzz merges novel findings into it, "
        "--replay re-certifies from it",
    )
    attack.add_argument(
        "--replay", default=None, metavar="FINDING_ID",
        help="re-certify one persisted finding from --corpus bitwise "
        "('all' replays every finding)",
    )
    attack.add_argument(
        "--knee", action="store_true",
        help="re-measure the service load-sweep knee under a "
        "hostile-tenant flood (clean vs attacked vs defended)",
    )
    attack.add_argument(
        "--machine", default="paragon", choices=("paragon", "t3d", "workstation"),
        help="service machine for --knee (default paragon)",
    )
    attack.add_argument("--mix", default="default", help="tenant mix for --knee")
    attack.add_argument(
        "--horizon", type=float, default=40.0, dest="horizon_s",
        help="arrival horizon per --knee sweep point (default 40)",
    )
    attack.add_argument(
        "--format", choices=("human", "json"), default="human", dest="fmt",
        help="report format (default human)",
    )
    attack.add_argument("--out", default=None, help="also write the JSON report here")

    lint = sub.add_parser(
        "lint",
        help="static communication/determinism/charging/protocol analysis",
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files or package dirs to lint (default: the repro package)",
    )
    lint.add_argument(
        "--format", choices=("human", "json", "sarif"), default="human", dest="fmt",
        help="report format (default human)",
    )
    lint.add_argument(
        "--protocol", action="store_true",
        help="also run the whole-program protocol verifier (PROTO-* rules) "
        "over the registered SPMD programs",
    )
    lint.add_argument("--baseline", help="reviewed baseline JSON to subtract")
    lint.add_argument(
        "--write-baseline", metavar="PATH",
        help="write current findings as a baseline file and exit 0",
    )
    lint.add_argument(
        "--comm-summary", action="store_true",
        help="dump per-module static communication summaries instead of findings",
    )
    lint.add_argument(
        "--verbose", action="store_true",
        help="also list suppressed and baselined findings",
    )
    return parser


def _mimd_options(args, placement: str = "snake", **extra):
    """The RunOptions the legacy ``_mimd_machine`` helper used to imply:
    NX message protocol on the Paragon, calibrated defaults elsewhere."""
    from repro.runtime import RunOptions

    protocol = "nx" if args.machine == "paragon" else None
    return RunOptions(
        machine=args.machine,
        nranks=args.procs,
        placement=placement,
        protocol=protocol,
        **extra,
    )


def _cmd_wavelet(args) -> int:
    from repro.data import landsat_like_scene
    from repro.machines.simd import MasParMachine, maspar_mp2
    from repro.perf import format_budget, format_timeline
    from repro.runtime import JobSpec, launch
    from repro.wavelet import filter_bank_for_length
    from repro.wavelet.parallel import simd_mallat_decompose

    image = landsat_like_scene((args.size, args.size))
    bank = filter_bank_for_length(args.filter_length)
    print(
        f"decomposing {args.size}x{args.size}, {bank.name}, "
        f"{args.levels} level(s) on {args.machine}"
    )
    if args.machine == "maspar":
        from repro.wavelet.plan import parse_kernel_spec

        # Map the MIMD kernel spec onto the closest SIMD formulation:
        # conv filters run systolically, the lifting-scheme traversals
        # run the decimate-first lane algorithms.
        plan = parse_kernel_spec(args.kernel)
        if plan.traversal == "single-loop":
            algorithm = "single-loop"
        elif plan.scheme == "conv":
            algorithm = "systolic"
        else:
            algorithm = "lifting"
        machine = MasParMachine(maspar_mp2(), "hierarchical")
        outcome = simd_mallat_decompose(
            machine, image, bank, args.levels, algorithm=algorithm
        )
        print(f"algorithm: {outcome.algorithm}")
        print(f"virtual time: {outcome.elapsed_s:.4f} s "
              f"({1 / outcome.elapsed_s:.0f} images/second)")
        for kind, share in outcome.stats.fractions().items():
            print(f"  {kind:<10}{share:.0%}")
        return 0

    spec = JobSpec(
        program="wavelet",
        params={"image": image, "bank": bank, "levels": args.levels},
        options=_mimd_options(
            args,
            placement=args.placement,
            kernel=args.kernel,
            record_trace=args.timeline,
        ),
    )
    execution = launch(spec)
    if args.timeline:
        print(format_timeline("decomposition timeline", execution.run))
        print(f"virtual time: {execution.run.elapsed_s:.4f} s")
        return 0
    print(f"virtual time: {execution.run.elapsed_s:.4f} s")
    print(format_budget("performance budget", execution.run))
    return 0


def _cmd_nbody(args) -> int:
    from repro.data import plummer_sphere
    from repro.perf import format_budget
    from repro.runtime import JobSpec, execute, resolve_machine

    particles = plummer_sphere(args.bodies, dim=2, seed=0)
    spec = JobSpec(
        program="nbody",
        params={
            "particles": particles,
            "steps": args.steps,
            "theta": args.theta,
            "model": args.model,
        },
        options=_mimd_options(args),
    )
    machine = resolve_machine(spec.options)
    outcome = execute(machine, spec).outcome
    print(
        f"{args.bodies} bodies, {args.steps} steps on {machine.name}: "
        f"{outcome.run.elapsed_s:.3f} virtual s"
    )
    print(
        "interactions/step:",
        ", ".join(f"{i:,}" for i in outcome.interactions_per_step),
    )
    print(format_budget("performance budget", outcome.run))
    return 0


def _cmd_pic(args) -> int:
    from repro.data import uniform_cube
    from repro.perf import format_budget
    from repro.pic import Grid3D
    from repro.runtime import JobSpec, execute, resolve_machine

    particles = uniform_cube(args.particles, thermal_speed=0.05, seed=0)
    spec = JobSpec(
        program="pic",
        params={
            "grid": Grid3D(args.grid_m),
            "particles": particles,
            "steps": args.steps,
            "global_sum": args.global_sum,
            "collect": False,
        },
        options=_mimd_options(args),
    )
    machine = resolve_machine(spec.options)
    outcome = execute(machine, spec).outcome
    print(
        f"{args.particles} particles, {args.grid_m}^3 grid, {args.steps} steps "
        f"on {machine.name}: {outcome.run.elapsed_s:.3f} virtual s"
    )
    print("adaptive dt per step:", ", ".join(f"{dt:.4g}" for dt in outcome.dts))
    print(format_budget("performance budget", outcome.run))
    return 0


def _cmd_workload(args) -> int:
    from repro.perf import format_table
    from repro.workload import (
        INSTRUCTION_TYPES,
        nas_suite,
        oracle_schedule,
        similarity_matrix,
        smoothability,
    )

    suite = nas_suite(args.scale)
    workloads = [oracle_schedule(t).workload for t in suite]
    names = [t.name for t in suite]
    rows = []
    for trace, workload in zip(suite, workloads):
        smooth = smoothability(trace)
        rows.append(
            [trace.name, f"{workload.average_parallelism:.1f}", f"{smooth.smoothability:.3f}"]
            + [f"{v:.1f}" for v in workload.centroid()]
        )
    print(
        format_table(
            "NAS-like suite characterization",
            ["kernel", "avg_par", "smooth"] + list(INSTRUCTION_TYPES),
            rows,
        )
    )
    matrix = similarity_matrix(workloads)
    sim_rows = [
        [names[i]] + [f"{matrix[i, j]:.2f}" for j in range(i + 1)]
        for i in range(len(names))
    ]
    print()
    print(format_table("pairwise similarity (0=identical)", ["kernel"] + names, sim_rows))
    print()
    from repro.perf import format_profile

    for trace, workload in zip(suite, workloads):
        print(format_profile(f"{trace.name} parallelism profile", workload.parallelism_profile()))
    return 0


def _cmd_table1(args) -> int:
    from repro.data import landsat_like_scene
    from repro.machines import paragon, workstation
    from repro.machines.simd import MasParMachine, maspar_mp2
    from repro.perf import format_table
    from repro.wavelet import filter_bank_for_length
    from repro.wavelet.parallel import run_spmd_wavelet, simd_mallat_decompose

    image = landsat_like_scene((512, 512))
    rows = []
    machines = [
        ("MasPar MP-2 (16K)", None),
        ("Paragon 1 proc", paragon(1)),
        ("Paragon 32 proc", paragon(32)),
        ("DEC 5000", workstation()),
    ]
    for label, machine in machines:
        cells = []
        for filter_length, levels in ((8, 1), (4, 2), (2, 4)):
            bank = filter_bank_for_length(filter_length)
            if machine is None:
                simd = simd_mallat_decompose(
                    MasParMachine(maspar_mp2(), "hierarchical"), image, bank, levels
                )
                cells.append(f"{simd.elapsed_s:.4f}")
            else:
                outcome = run_spmd_wavelet(machine, image, bank, levels)
                cells.append(f"{outcome.run.elapsed_s:.4f}")
        rows.append([label] + cells)
    print(
        format_table(
            "Appendix A Table 1 (virtual seconds)",
            ["machine", "F8/L1", "F4/L2", "F2/L4"],
            rows,
        )
    )
    return 0


def _traced_run(args):
    """Run the selected program with tracing on and return its RunResult."""
    from repro.runtime import JobSpec, execute, resolve_machine

    if args.program == "wavelet":
        from repro.data import landsat_like_scene
        from repro.wavelet import filter_bank_for_length

        image = landsat_like_scene((args.size, args.size))
        bank = filter_bank_for_length(args.filter_length)
        label = f"{args.size}x{args.size} F{args.filter_length}/L{args.levels} wavelet"
        # Appendix A's wavelet study ran over PVM (the Fig. 5 calibration);
        # the nbody/pic programs below use the NX regime like Appendix B.
        options = _mimd_options(args, placement=args.placement, record_trace=True)
        if args.machine == "paragon":
            options = options.with_updates(protocol="pvm")
        spec = JobSpec(
            program="wavelet",
            params={"image": image, "bank": bank, "levels": args.levels},
            options=options,
        )
    elif args.program == "nbody":
        from repro.data import plummer_sphere

        particles = plummer_sphere(args.bodies, dim=2, seed=0)
        label = f"{args.bodies}-body manager-worker"
        spec = JobSpec(
            program="nbody",
            params={"particles": particles, "steps": args.steps},
            options=_mimd_options(args, placement=args.placement, record_trace=True),
        )
    else:
        from repro.data import uniform_cube
        from repro.pic import Grid3D

        particles = uniform_cube(args.particles, thermal_speed=0.05, seed=0)
        label = f"{args.particles}-particle PIC"
        spec = JobSpec(
            program="pic",
            params={
                "grid": Grid3D(args.grid_m),
                "particles": particles,
                "steps": args.steps,
                "collect": False,
            },
            options=_mimd_options(args, placement=args.placement, record_trace=True),
        )
    machine = resolve_machine(spec.options)
    run = execute(machine, spec).run
    return machine, label, run


def _cmd_trace(args) -> int:
    from repro.machines.causality import (
        HappensBeforeGraph,
        certify_deterministic,
        write_chrome_trace,
    )
    from repro.perf import format_critical_path

    machine, label, run = _traced_run(args)
    print(f"traced {label} on {machine.name}: {len(run.trace)} events, "
          f"{run.messages_sent} messages")

    graph = HappensBeforeGraph(run.trace)
    report = certify_deterministic(graph)
    if report.deterministic:
        print(
            f"race detector: {report.wildcard_recvs} wildcard recv(s), 0 hazards "
            "-> message matching is interleaving-independent"
        )
    else:
        print(
            f"race detector: {len(report.races)} nondeterminism hazard(s) over "
            f"{report.wildcard_recvs} wildcard recv(s)"
        )
        for race in report.races:
            print(f"  {race.describe()}")

    print(format_critical_path("critical path", graph.critical_path(run.elapsed_s)))

    if args.out:
        doc = write_chrome_trace(args.out, run, machine_name=machine.name)
        print(f"wrote {len(doc['traceEvents'])} trace events to {args.out}")
    return 0


def _fault_app(args):
    """Build (label, program, prog_args, prog_kwargs) for the faults sweep.

    The sweep drives the rank program directly through the recovery driver
    (not the ``run_*`` wrapper), because the driver owns the Engine loop.
    """
    if args.program == "wavelet":
        from repro.data import landsat_like_scene
        from repro.wavelet import filter_bank_for_length
        from repro.wavelet.parallel.decomposition import StripeDecomposition
        from repro.wavelet.parallel.spmd import striped_wavelet_program

        image = landsat_like_scene((args.size, args.size))
        bank = filter_bank_for_length(args.filter_length)
        decomp = StripeDecomposition(args.size, args.size, args.procs, args.levels)
        label = f"{args.size}x{args.size} F{args.filter_length}/L{args.levels} wavelet"
        return label, striped_wavelet_program, (image, bank, args.levels, decomp), {}
    if args.program == "nbody":
        from repro.data import plummer_sphere
        from repro.nbody.parallel import manager_worker_program

        particles = plummer_sphere(args.bodies, dim=2, seed=0)
        label = f"{args.bodies}-body manager-worker"
        return label, manager_worker_program, (particles, args.steps), {}
    from repro.data import uniform_cube
    from repro.pic import Grid3D
    from repro.pic.parallel import pic_program

    particles = uniform_cube(args.particles, thermal_speed=0.05, seed=0)
    label = f"{args.particles}-particle PIC"
    grid_args = (Grid3D(args.grid_m), particles, args.steps)
    return label, pic_program, grid_args, {"collect": False}


def _cmd_faults(args) -> int:
    from repro.machines.faults import FaultPlan, payload_equal
    from repro.perf import format_fault_sweep
    from repro.runtime import resolve_machine, run_program

    rates = [float(r) for r in args.rates.split(",") if r.strip()]
    label, program, prog_args, prog_kwargs = _fault_app(args)
    if args.checkpoint_interval > 0:
        prog_kwargs = dict(prog_kwargs, checkpoint_interval=args.checkpoint_interval)

    # Fault-free reference: the correctness oracle and the time horizon
    # that crash instants and slowdown windows are drawn from.
    machine = resolve_machine(_mimd_options(args))
    reference = run_program(machine, program, *prog_args, **prog_kwargs).run
    print(
        f"{label} on {machine.name}: fault-free reference "
        f"{reference.elapsed_s:.4f} virtual s"
    )

    rows = []
    mismatches = 0
    for rate in rates:
        plan = FaultPlan.sampled(
            args.seed, args.procs, rate, t_horizon=reference.elapsed_s
        )
        # Fresh machine per run: the contention network carries per-run state.
        outcome = run_program(
            resolve_machine(_mimd_options(args)),
            program,
            *prog_args,
            faults=plan,
            max_restarts=args.max_restarts,
            **prog_kwargs,
        )
        if not payload_equal(outcome.run.results, reference.results):
            mismatches += 1
            print(f"  WARNING: rate {rate:.2f} result differs from reference")
        stats = outcome.run.fault_stats
        rows.append(
            {
                "rate": rate,
                "elapsed_s": outcome.run.elapsed_s,
                # Overhead over *total* virtual time: a restarted final
                # attempt can be shorter than the reference (it resumes
                # from a checkpoint), but the aborted attempts still cost.
                "overhead": outcome.total_virtual_s / reference.elapsed_s - 1.0,
                "retransmits": stats["retransmits"],
                "checkpoints": stats["checkpoints"],
                "restarts": outcome.restarts,
                "lost_s": outcome.total_virtual_s - outcome.run.elapsed_s,
            }
        )
    print(format_fault_sweep(f"fault sweep (seed {args.seed})", rows))
    if mismatches == 0:
        print("all recovered runs bitwise-identical to the fault-free reference")
        return 0
    print(f"{mismatches} run(s) diverged from the fault-free reference")
    return 1


def _schedule_spec(args, entry: str, index: int):
    """Turn one ``--job prog:procs`` entry into a JobSpec."""
    from repro.errors import ConfigurationError
    from repro.runtime import JobSpec, RunOptions

    name, _, procs_text = entry.partition(":")
    try:
        procs = int(procs_text) if procs_text else 8
    except ValueError:
        raise ConfigurationError(
            f"--job expects program:procs, got {entry!r}"
        ) from None
    # The collective knob rides along verbatim: ProgramDef.validate rejects
    # it with a ConfigurationError on programs without a global reduction.
    options = RunOptions(
        nranks=procs, collective=getattr(args, "collective", "rdouble")
    )
    if name == "wavelet":
        from repro.data import landsat_like_scene
        from repro.wavelet import filter_bank_for_length

        params = {
            "image": landsat_like_scene((args.size, args.size)),
            "bank": filter_bank_for_length(args.filter_length),
            "levels": args.levels,
        }
    elif name == "nbody":
        from repro.data import plummer_sphere

        params = {
            "particles": plummer_sphere(args.bodies, dim=2, seed=0),
            "steps": args.steps,
        }
    elif name == "pic":
        from repro.data import uniform_cube
        from repro.pic import Grid3D

        params = {
            "grid": Grid3D(args.grid_m),
            "particles": uniform_cube(args.particles, thermal_speed=0.05, seed=0),
            "steps": args.steps,
            "collect": False,
        }
    elif name == "workload":
        from repro.workload import nas_suite

        params = {"trace": nas_suite(0.2)[0]}
    else:
        raise ConfigurationError(
            f"unknown --job program {name!r}; "
            "use wavelet, nbody, pic, or workload"
        )
    return JobSpec(
        program=name, params=params, options=options, name=f"{name}#{index}"
    )


def _arrival_times(process, count: int) -> list:
    """First ``count`` instants of a seeded arrival process.

    ``times()`` regenerates the identical stream from its seed on every
    call, so growing the horizon until enough events land is replay-safe.
    """
    horizon_s = max(1.0, 4.0 * count / process.mean_rate_s)
    while True:
        times = list(process.times(horizon_s))
        if len(times) >= count:
            return times[:count]
        horizon_s *= 2.0


def _cmd_schedule(args) -> int:
    from repro.perf import format_table
    from repro.runtime import Scheduler, machine_template, make_policy

    entries = args.jobs or ["wavelet:32", "wavelet:32"]
    protocol = "nx" if args.machine == "paragon" else None
    template = machine_template(args.machine, protocol=protocol)
    sched = Scheduler(template, policy=make_policy(args.policy))
    if args.arrival:
        from repro.service.arrivals import parse_arrival_spec

        process = parse_arrival_spec(args.arrival, args.seed)
        count = args.count if args.count > 0 else len(entries)
        submit_times = _arrival_times(process, count)
        print(
            f"staggering {count} submission(s) over {process.describe()}: "
            f"last arrival t={submit_times[-1]:.3f}s"
        )
        for index, submit_s in enumerate(submit_times):
            entry = entries[index % len(entries)]
            sched.submit(_schedule_spec(args, entry, index), submit_s=submit_s)
    else:
        for index, entry in enumerate(entries):
            sched.submit(_schedule_spec(args, entry, index))
    results = sched.run()

    rows = [
        [
            result.spec.label,
            str(result.spec.options.nranks),
            str(result.partition_size),
            f"{result.queue_wait_s:.4f}",
            f"{result.service_s:.4f}",
            f"{result.turnaround_s:.4f}",
        ]
        for result in results
    ]
    print(
        f"{len(results)} job(s) space-shared on {template.prototype.name} "
        f"({sched.usable_nodes} schedulable nodes)"
    )
    print(
        format_table(
            "schedule (virtual seconds)",
            ["job", "ranks", "partition", "queued", "service", "turnaround"],
            rows,
        )
    )
    print(
        f"makespan {sched.makespan_s():.4f} s, "
        f"utilization {sched.utilization():.0%}, "
        f"total queue wait {sched.total_queue_wait_s():.4f} s"
    )
    return 0


def _bench_ratchet(args, doc) -> int:
    """Apply the --ratchet speedup comparison; returns the exit code."""
    if not args.ratchet:
        return 0
    from repro.perf.ratchet import check_ratchet, format_ratchet

    report = check_ratchet(doc, args.ratchet, tolerance=args.ratchet_tolerance)
    print(format_ratchet(report))
    return 0 if report["ok"] else 1


def _cmd_engine_bench(args) -> int:
    import json

    from repro.perf.engine_bench import (
        DEFAULT_RANKS,
        format_engine_bench,
        run_engine_sweep,
        validate_engine_bench_document,
    )

    if args.ranks:
        ranks = tuple(int(r) for r in args.ranks.split(","))
    elif args.quick:
        ranks = (1024,)
    else:
        ranks = DEFAULT_RANKS
    # --quick trims the rank list, not the rounds: speedups at rounds=1
    # are structurally lower (matching cost grows with queue depth), so
    # a quick run must measure the same per-case shape it ratchets
    # against.
    doc = run_engine_sweep(ranks, rounds=args.rounds)
    validate_engine_bench_document(doc)
    print(format_engine_bench(doc))
    out = args.out if args.out != "BENCH_wavelet.json" else "BENCH_engine.json"
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {len(doc['results'])} results to {out}")
    return _bench_ratchet(args, doc)


def _cmd_bench(args) -> int:
    from repro.perf import format_table
    from repro.perf.bench import (
        default_cases,
        quick_cases,
        record_history,
        run_bench,
        run_virtual_bench,
        write_bench_json,
    )

    if args.engine:
        return _cmd_engine_bench(args)

    if args.virtual:
        cases = quick_cases() if args.quick else default_cases()
        doc = run_virtual_bench(cases, nranks=args.procs, seed=args.seed)
        rows = [
            [
                f"{row['size']}x{row['size']}",
                f"F{row['filter_length']}/L{row['levels']}",
                row["kernel"],
                f"{row['virtual_s'] * 1e3:.3f}",
                f"{row['speedup_vs_conv']:.2f}x",
            ]
            for row in doc["results"]
        ]
        print(
            format_table(
                f"kernel benchmark (virtual time, {args.procs} ranks)",
                ["image", "case", "kernel", "ms/op", "speedup"],
                rows,
            )
        )
        for skip in doc["skipped"]:
            print(f"skipped {skip['case']}: {skip['reason']}")
        import json

        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {len(doc['results'])} results to {args.out}")
        return _bench_ratchet(args, doc)

    cases = quick_cases() if args.quick else default_cases()
    repeats = min(args.repeats, 3) if args.quick else args.repeats
    doc = run_bench(
        cases,
        warmup=args.warmup,
        repeats=repeats,
        trim=args.trim,
        seed=args.seed,
    )

    rows = []
    for row in doc["results"]:
        rows.append(
            [
                f"{row['size']}x{row['size']}",
                f"F{row['filter_length']}/L{row['levels']}",
                row["kernel"],
                f"{row['ns_per_op'] / 1e6:.3f}",
                f"{row['speedup_vs_conv']:.2f}x",
                f"{row['max_abs_vs_conv']:.1e}",
                f"{row['round_trip_error']:.1e}",
            ]
        )
    print(
        format_table(
            "kernel benchmark (trimmed-mean wall clock)",
            ["image", "case", "kernel", "ms/op", "speedup", "vs_conv", "round_trip"],
            rows,
        )
    )
    if args.history_pr:
        import os

        from repro.perf.ratchet import load_bench

        prior_path = args.ratchet or args.out
        prior = load_bench(prior_path) if os.path.exists(prior_path) else None
        record_history(doc, args.history_pr, prior)
    write_bench_json(args.out, doc)
    print(f"wrote {len(doc['results'])} results to {args.out}")
    return _bench_ratchet(args, doc)


def _serve_human(doc: dict) -> None:
    """Render a service snapshot as tables on stdout."""
    from repro.perf import format_table

    config = doc["config"]
    jobs = doc["jobs"]
    latency = doc["latency"]
    backlog = doc["backlog"]
    print(
        f"service on {config['usable_nodes']} nodes: mix={config['mix']}, "
        f"arrival={config['arrival']}, policy={config['policy']}, "
        f"admission={config['admission']}"
    )
    print(
        f"offered {jobs['offered']} item(s), admitted {jobs['admitted']}, "
        f"completed {jobs['completed']} in {jobs['submissions']} submission(s), "
        f"shed {jobs['shed']} ({jobs['shed_rate']:.1%})"
    )
    if jobs["shed_reasons"]:
        reasons = ", ".join(
            f"{reason}={count}" for reason, count in sorted(jobs["shed_reasons"].items())
        )
        print(f"shed reasons: {reasons}")
    rows = [
        [
            name,
            str(latency[key]["count"]),
            f"{latency[key]['p50']:.4f}",
            f"{latency[key]['p99']:.4f}",
            f"{latency[key]['mean']:.4f}",
            f"{latency[key]['max']:.4f}",
        ]
        for name, key in (
            ("queue wait", "queue_wait"),
            ("turnaround", "turnaround"),
            ("pipeline", "pipeline_makespan"),
        )
        if latency[key]["count"]
    ]
    print(
        format_table(
            "latency (virtual seconds)",
            ["metric", "n", "p50", "p99", "mean", "max"],
            rows,
        )
    )
    tenant_rows = [
        [
            entry["tenant"],
            str(entry["completed"]),
            str(entry["shed"]),
            f"{entry['queue_wait']['p99']:.4f}",
            f"{entry['turnaround']['p50']:.4f}",
            f"{entry['turnaround']['p99']:.4f}",
        ]
        for entry in doc["per_tenant"]
    ]
    print(
        format_table(
            "per-tenant",
            ["tenant", "done", "shed", "wait p99", "turn p50", "turn p99"],
            tenant_rows,
        )
    )
    print(
        f"utilization {doc['utilization']:.0%}, backlog peak {backlog['peak']} "
        f"mean {backlog['mean']:.1f} end {backlog['end']}, "
        f"drained at t={doc['elapsed_s']:.3f}s"
    )


def _sweep_human(doc: dict) -> None:
    """Render a load-sweep report as a table plus the knee verdict."""
    from repro.perf import format_table

    config = doc["config"]
    print(
        f"load sweep on {config['usable_nodes']} nodes: mix={config['mix']}, "
        f"arrival={config['arrival']}, policy={config['policy']}, "
        f"estimated capacity {config['capacity_rate_s']:.3f} req/s"
    )
    rows = [
        [
            f"{p['offered_load']:.2f}",
            f"{p['rate_s']:.3f}",
            str(p["completed"]),
            f"{p['shed_rate']:.1%}",
            f"{p['p50_turnaround_s']:.4f}",
            f"{p['p99_turnaround_s']:.4f}",
            f"{p['utilization']:.0%}",
            str(p["backlog_end"]),
            "yes" if p["unstable"] else "",
        ]
        for p in doc["points"]
    ]
    print(
        format_table(
            "offered-load sweep (virtual seconds)",
            ["load", "req/s", "done", "shed", "p50", "p99", "util", "backlog", "unstable"],
            rows,
        )
    )
    knee = doc["knee"]
    if knee["detected"]:
        print(
            f"saturation knee at offered load {knee['offered_load']:.2f}x "
            f"({knee['rate_s']:.3f} req/s), p99 turnaround "
            f"{knee['p99_turnaround_s']:.4f}s [{knee['method']}]"
        )
    else:
        print("no saturation knee detected inside the sweep range")


def _cmd_serve(args) -> int:
    import json as _json

    from repro.runtime import machine_template, make_policy
    from repro.service import (
        AdmissionController,
        EngineOracle,
        Service,
        ServiceConfig,
        estimate_capacity_rate,
        get_mix,
        parse_arrival_spec,
        run_load_sweep,
    )

    protocol = "nx" if args.machine == "paragon" else None
    template = machine_template(args.machine, protocol=protocol)
    usable_nodes = template.total_nodes
    mix = get_mix(args.mix)
    if args.collective != "rdouble":
        mix = mix.with_collective(args.collective)
    oracle = EngineOracle(args.machine, protocol=protocol)
    admission = None
    if args.queue_limit or args.tenant_backlog:
        admission = AdmissionController(
            tenant_backlog_limit=args.tenant_backlog,
            queue_limit=args.queue_limit,
        )

    if args.sweep:
        # The sweep sets each point's rate itself; only the kind carries.
        arrival_kind = args.arrival.partition(":")[0]
        multipliers = (
            tuple(float(m) for m in args.sweep_loads.split(","))
            if args.sweep_loads
            else (0.25, 0.5, 0.75, 1.0, 1.5, 2.0)
        )
        doc = run_load_sweep(
            usable_nodes,
            mix,
            oracle,
            multipliers=multipliers,
            arrival_kind=arrival_kind,
            seed=args.seed,
            horizon_s=args.horizon_s,
            policy_name=args.policy,
            admission=admission,
        )
        if args.fmt == "json":
            print(_json.dumps(doc, indent=2, sort_keys=True))
        else:
            _sweep_human(doc)
    else:
        default_rate = args.load * estimate_capacity_rate(mix, oracle, usable_nodes)
        arrivals = parse_arrival_spec(args.arrival, args.seed, rate_s=default_rate)
        service = Service(
            usable_nodes,
            mix,
            arrivals,
            oracle,
            policy=make_policy(args.policy, weights=mix.tenant_weights()),
            admission=admission,
            config=ServiceConfig(horizon_s=args.horizon_s),
            seed=args.seed,
        )
        doc = service.run().snapshot
        if args.fmt == "json":
            print(_json.dumps(doc, indent=2, sort_keys=True))
        else:
            _serve_human(doc)

    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            _json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote report to {args.out}")
    return 0


def _attack_cell_row(cell: dict) -> str:
    mark = {True: "ok", False: "MISMATCH", None: "-"}[cell["expected_ok"]]
    return (
        f"  {cell['scenario']:22s} {cell['app']:8s} "
        f"{cell['verdict']}/{cell['layer']:20s} "
        f"attacks={cell['attacks']:<4d} restarts={cell['restarts']:<2d} {mark}"
    )


def _cmd_attack(args) -> int:
    import json as _json

    from repro.scenarios import (
        APPS,
        DEFAULT_PLACEMENTS,
        DEFAULT_SEEDS,
        SCENARIOS,
        certify,
        empty_corpus,
        finding_from_certification,
        get_scenario,
        load_corpus,
        merge_findings,
        replay_finding,
        run_fuzz,
        write_corpus,
    )

    if args.list:
        for sc in SCENARIOS:
            expected = ", ".join(
                f"{app}={verdict}/{layer}"
                for app, (verdict, layer) in sorted(sc.expected.items())
            )
            print(f"{sc.scenario_id:22s} {sc.title}")
            print(f"{'':22s} expected: {expected}")
        return 0

    failures = 0
    if args.knee:
        from repro.runtime import machine_template
        from repro.scenarios import attacked_sweep
        from repro.service import EngineOracle, get_mix

        protocol = "nx" if args.machine == "paragon" else None
        template = machine_template(args.machine, protocol=protocol)
        doc = attacked_sweep(
            template.total_nodes,
            get_mix(args.mix),
            EngineOracle(args.machine, protocol=protocol),
            seed=args.seed,
            horizon_s=args.horizon_s,
        )
        if args.fmt == "json":
            slim = {key: value for key, value in doc.items() if key != "sweeps"}
            print(_json.dumps(slim, indent=2, sort_keys=True))
        else:
            atk = doc["attack"]
            print(
                f"hostile tenant {atk['tenant']!r} weight {atk['weight']:g}, "
                f"defense rate limit {atk['defense_rate_s']:.3f}/s"
            )
            for name in ("clean", "attacked", "defended"):
                s = doc[name]
                knee = (
                    f"knee @ {s['knee_rate_s']:.3f}/s "
                    f"(load {s['knee_offered_load']:g}, "
                    f"p99 {s['knee_p99_turnaround_s']:.2f}s)"
                    if s["knee_detected"]
                    else "no knee in sweep range"
                )
                print(
                    f"  {name:9s} {knee}; completed {s['completed']}/"
                    f"{s['offered']}, worst shed {s['worst_shed_rate']:.2f}, "
                    f"worst backlog {s['worst_backlog_end']}"
                )
    elif args.replay:
        if not args.corpus:
            print("--replay needs --corpus PATH", file=sys.stderr)
            return 2
        corpus = load_corpus(args.corpus)
        if args.replay == "all":
            targets = corpus["findings"]
        else:
            targets = [f for f in corpus["findings"] if f["id"] == args.replay]
            if not targets:
                print(
                    f"no finding {args.replay!r} in {args.corpus}", file=sys.stderr
                )
                return 2
        replays = []
        for finding in targets:
            _cert, mismatches = replay_finding(finding, nranks=corpus["nranks"])
            replays.append({"id": finding["id"], "mismatches": mismatches})
            failures += bool(mismatches)
        doc = {
            "schema": "repro.scenarios.replay/v1",
            "corpus": args.corpus,
            "replayed": len(replays),
            "failures": failures,
            "replays": replays,
        }
        if args.fmt == "json":
            print(_json.dumps(doc, indent=2, sort_keys=True))
        else:
            for row in replays:
                status = (
                    "bitwise" if not row["mismatches"]
                    else "; ".join(row["mismatches"])
                )
                print(f"  {row['id']:48s} {status}")
            print(f"replayed {len(replays)} finding(s), {failures} failure(s)")
    elif args.fuzz:
        seeds = (
            tuple(int(s) for s in args.seeds.split(","))
            if args.seeds
            else DEFAULT_SEEDS
        )
        placements = (
            tuple(int(r) for r in args.placements.split(","))
            if args.placements
            else DEFAULT_PLACEMENTS
        )
        scenario_filter = (args.scenario,) if args.scenario else None
        apps = (args.app,) if args.app else APPS
        findings = run_fuzz(scenario_filter, apps, seeds, placements)
        added = None
        if args.corpus:
            try:
                corpus = load_corpus(args.corpus)
            except FileNotFoundError:
                corpus = empty_corpus()
            added = merge_findings(corpus, findings)
            write_corpus(args.corpus, corpus)
        doc = {
            "schema": "repro.scenarios.fuzz/v1",
            "seeds": list(seeds),
            "placements": list(placements),
            "findings": findings,
            "novel": added,
        }
        if args.fmt == "json":
            print(_json.dumps(doc, indent=2, sort_keys=True))
        else:
            for finding in findings:
                print(
                    f"  {finding['id']:48s} "
                    f"{finding['verdict']}/{finding['layer']}"
                )
            print(f"{len(findings)} finding(s) from the sweep")
            if added is not None:
                print(f"merged {added} novel finding(s) into {args.corpus}")
    else:
        scenarios = (
            (get_scenario(args.scenario),) if args.scenario else SCENARIOS
        )
        apps = (args.app,) if args.app else APPS
        pinned = args.placement is None and args.seed == 0
        cells = []
        for sc in scenarios:
            cell_apps = ("static",) if sc.kind == "static" else apps
            for app in cell_apps:
                cert = certify(
                    sc, app, seed=args.seed, placement=args.placement
                )
                expected = sc.expected.get(app)
                expected_ok = (
                    (cert.verdict, cert.layer) == tuple(expected)
                    if pinned and expected is not None
                    else None
                )
                failures += expected_ok is False
                cell = finding_from_certification(cert)
                cell["detail"] = cert.detail
                cell["expected_ok"] = expected_ok
                cells.append(cell)
        doc = {
            "schema": "repro.scenarios.certification/v1",
            "seed": args.seed,
            "placement": args.placement,
            "cells": cells,
            "failures": failures,
        }
        if args.fmt == "json":
            print(_json.dumps(doc, indent=2, sort_keys=True))
        else:
            for cell in cells:
                print(_attack_cell_row(cell))
            verdicts = sum(cell["verdict"] == "detected" for cell in cells)
            print(
                f"{len(cells)} cell(s): {verdicts} detected, "
                f"{len(cells) - verdicts} survived, {failures} "
                f"expectation mismatch(es)"
            )

    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            _json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote report to {args.out}")
    return 1 if failures else 0


def _cmd_lint(args) -> int:
    import json as _json

    from repro.analysis import lint_paths, write_baseline
    from repro.analysis.linter import (
        LintConfig,
        format_comm_summary,
        format_human,
        format_json,
    )

    config = LintConfig(protocol=args.protocol)
    report = lint_paths(args.paths or None, config, baseline_path=args.baseline)
    if args.write_baseline:
        write_baseline(args.write_baseline, report.findings)
        print(f"wrote baseline for {len(report.findings)} finding(s) to {args.write_baseline}")
        return 0
    if args.comm_summary:
        print(format_comm_summary(report))
        return 0
    if args.fmt == "json":
        print(_json.dumps(format_json(report), indent=2, sort_keys=True))
    elif args.fmt == "sarif":
        from repro.analysis.sarif import format_sarif

        print(_json.dumps(format_sarif(report), indent=2, sort_keys=True))
    else:
        print(format_human(report, verbose=args.verbose))
    return report.exit_code


_COMMANDS = {
    "wavelet": _cmd_wavelet,
    "nbody": _cmd_nbody,
    "pic": _cmd_pic,
    "workload": _cmd_workload,
    "table1": _cmd_table1,
    "trace": _cmd_trace,
    "faults": _cmd_faults,
    "schedule": _cmd_schedule,
    "bench": _cmd_bench,
    "serve": _cmd_serve,
    "attack": _cmd_attack,
    "lint": _cmd_lint,
}


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
