"""Source discovery and cross-module constant resolution.

The linter works on parsed source, never on live objects, so it can check
fixture files and uncommitted edits.  The one place it leans on the
import system is :class:`ConstEnv`: a tag expression like
``tags.WAVELET_ROW_GUARD`` (or ``_TAG_GUARD`` defined at module level
from such an attribute) is resolved to its integer by importing the
*referenced* ``repro.*`` module — which is exactly the central registry
in the refactored tree — while plain literals resolve without any
import.  Resolution also tracks *provenance*: a value is **minted** in a
module when it derives only from integer literals written there, and
imported otherwise.  The tag-collision rule only holds modules
responsible for values they mint; values shared through
:mod:`repro.machines.tags` have a single owner by construction.
"""

from __future__ import annotations

import ast
import importlib
import os
from dataclasses import dataclass, field

from repro.analysis.rules import parse_suppressions

__all__ = ["SourceModule", "ConstEnv", "ResolvedValue", "discover_package", "modules_from_sources"]


@dataclass
class SourceModule:
    """One parsed source file (or in-memory fixture)."""

    name: str  # dotted module name
    path: str  # file path, or "<memory>" for fixtures
    source: str
    tree: ast.Module
    suppressions: dict[int, set[str]] = field(default_factory=dict)

    @classmethod
    def from_source(cls, name: str, source: str, path: str = "<memory>") -> "SourceModule":
        return cls(
            name=name,
            path=path,
            source=source,
            tree=ast.parse(source, filename=path),
            suppressions=parse_suppressions(source),
        )


@dataclass(frozen=True)
class ResolvedValue:
    """An integer resolved from an expression, with provenance."""

    value: int
    minted: bool  # True when derived only from literals in this module


class ConstEnv:
    """Best-effort constant environment for one module.

    Resolves integer-valued expressions built from:

    * integer literals;
    * ``+``/``-``/``*`` arithmetic over resolvable parts;
    * module-level ``NAME = <expr>`` constants (followed recursively);
    * names imported ``from repro.x import NAME`` and attributes on
      modules imported ``from repro import x`` / ``import repro.x`` —
      resolved by importing the real module (``repro.*`` only, so
      resolution never executes third-party code).

    Anything else — parameters, per-rank arithmetic, function results —
    is *dynamic* and resolves to ``None``.
    """

    def __init__(self, module: SourceModule) -> None:
        self.module = module
        self._consts: dict[str, ast.expr] = {}
        self._imported: dict[str, tuple[str, str | None]] = {}  # name -> (module, attr)
        self._cache: dict[str, ResolvedValue | None] = {}
        self._resolving: set[str] = set()
        for node in module.tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    self._consts[target.id] = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    self._consts[node.target.id] = node.value
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    self._imported[alias.asname or alias.name] = (node.module, alias.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    self._imported[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0],
                        None,
                    )

    # -- import-backed lookups --------------------------------------------

    @staticmethod
    def _import_value(module_name: str, attr: str) -> int | None:
        """Fetch an integer attribute from a ``repro.*`` module."""
        if not module_name.startswith("repro"):
            return None
        try:
            mod = importlib.import_module(module_name)
        except Exception:
            return None
        value = getattr(mod, attr, None)
        # Try one level deeper: `from repro.machines import tags` then
        # `tags.X` arrives here as module_name="repro.machines", attr="tags".
        return value if isinstance(value, int) and not isinstance(value, bool) else None

    def _resolve_imported_name(self, name: str) -> ResolvedValue | None:
        entry = self._imported.get(name)
        if entry is None:
            return None
        module_name, attr = entry
        if attr is None:
            return None  # a module alias, not a value
        value = self._import_value(module_name, attr)
        if value is None:
            # `from repro.machines import tags`-style submodule import
            # resolves when the *attribute* is used, not the name itself.
            return None
        return ResolvedValue(value=value, minted=False)

    def _resolve_attribute(self, node: ast.Attribute) -> ResolvedValue | None:
        parts: list[str] = []
        cursor: ast.expr = node
        while isinstance(cursor, ast.Attribute):
            parts.append(cursor.attr)
            cursor = cursor.value
        if not isinstance(cursor, ast.Name):
            return None
        parts.append(cursor.id)
        parts.reverse()  # e.g. ["tags", "WAVELET_ROW_GUARD"]
        root = parts[0]
        entry = self._imported.get(root)
        if entry is None:
            return None
        module_name, attr = entry
        if attr is not None:
            # `from repro.machines import tags` -> root module repro.machines.tags
            module_name = f"{module_name}.{attr}"
        # Walk intermediate attributes as submodules, last one as the value.
        for part in parts[1:-1]:
            module_name = f"{module_name}.{part}"
        value = self._import_value(module_name, parts[-1])
        if value is None:
            return None
        return ResolvedValue(value=value, minted=False)

    # -- public API --------------------------------------------------------

    def resolve(self, node: ast.expr | None) -> ResolvedValue | None:
        """Resolve ``node`` to an integer with provenance, else ``None``."""
        if node is None:
            return None
        if isinstance(node, ast.Constant):
            if isinstance(node.value, int) and not isinstance(node.value, bool):
                return ResolvedValue(value=node.value, minted=True)
            return None
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            inner = self.resolve(node.operand)
            if inner is None:
                return None
            return ResolvedValue(value=-inner.value, minted=inner.minted)
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub, ast.Mult)):
            left = self.resolve(node.left)
            right = self.resolve(node.right)
            if left is None or right is None:
                return None
            ops = {ast.Add: int.__add__, ast.Sub: int.__sub__, ast.Mult: int.__mul__}
            value = ops[type(node.op)](left.value, right.value)
            return ResolvedValue(value=value, minted=left.minted and right.minted)
        if isinstance(node, ast.Name):
            return self.resolve_name(node.id)
        if isinstance(node, ast.Attribute):
            return self._resolve_attribute(node)
        return None

    def resolve_name(self, name: str) -> ResolvedValue | None:
        if name in self._cache:
            return self._cache[name]
        if name in self._resolving:
            return None  # cycle guard
        self._resolving.add(name)
        try:
            result: ResolvedValue | None = None
            if name in self._consts:
                result = self.resolve(self._consts[name])
            if result is None:
                result = self._resolve_imported_name(name)
            self._cache[name] = result
            return result
        finally:
            self._resolving.discard(name)

    def constant_names(self) -> tuple[str, ...]:
        """Module-level constant names, in definition order."""
        return tuple(self._consts)


def discover_package(root: str) -> list[SourceModule]:
    """Parse every ``*.py`` under ``root`` into :class:`SourceModule`\\ s.

    ``root`` is a package directory (e.g. ``src/repro``); dotted module
    names are derived from the path relative to its parent.
    """
    root = os.path.abspath(root)
    parent = os.path.dirname(root)
    modules: list[SourceModule] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__" and not d.startswith("."))
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            rel = os.path.relpath(path, parent)
            name = rel[: -len(".py")].replace(os.sep, ".")
            if name.endswith(".__init__"):
                name = name[: -len(".__init__")]
            with open(path, encoding="utf-8") as fh:
                source = fh.read()
            modules.append(SourceModule.from_source(name, source, path=path))
    return modules


def modules_from_sources(sources: dict[str, str]) -> list[SourceModule]:
    """Build in-memory modules from ``{dotted_name: source}`` (fixtures)."""
    return [SourceModule.from_source(name, text) for name, text in sorted(sources.items())]
