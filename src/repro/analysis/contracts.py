"""Plan/guard cross-layer contract: exchanged rows match the kernel plan.

Every wavelet SPMD program ships guard rows sized by the kernel plan's
``analysis_guard_depths`` / ``synthesis_guard_depths``.  The depths are
*data* (per kernel × filter bank), the slices are *code*
(``current[:back]``, ``current[rows - front:]``, ``[-guard_depth:]``),
and nothing ties them together until a transform silently corrupts its
seam.  This check closes the loop statically: for every registered
kernel spec and a representative set of filter banks, it evaluates the
payload slice depth of each guard-tag send in the extracted protocol
(:mod:`repro.analysis.protocol`) and compares it against the plan's
depth for the tag's :class:`~repro.machines.tags.GuardRole`.

A payload whose depth the evaluator cannot reduce to an integer is
skipped silently — the contract is checked where it is decidable, which
covers every slice form the programs use today (plain and tuple slices,
negative lower bounds, ``np.stack`` of slices, names resolved through
the local assignment environment).
"""

from __future__ import annotations

import ast

from repro.analysis.peers import OPAQUE, eval_atoms, eval_static
from repro.analysis.rules import Finding, rule

__all__ = ["check_guard_depths", "payload_depth", "REPRESENTATIVE_BANK_LENGTHS"]

RULE_GUARD_DEPTH = rule(
    "PROTO-GUARD-DEPTH-MISMATCH",
    "error",
    "guard exchange ships a different row count than the kernel plan requires",
    "size the payload slice with the plan's analysis_guard_depths / "
    "synthesis_guard_depths instead of a hand-computed depth",
)

#: Filter-bank lengths the contract is instantiated over (Haar through D8
#: — every support parity and both margin shapes).
REPRESENTATIVE_BANK_LENGTHS = (2, 4, 6, 8)

#: Slice bounds like ``rows - front`` are evaluated against a symbolic
#: tile size large enough that no guard clause truncates it.
_SIZE = 1 << 20

#: Marker for a dimension sliced without bounds (``[:]``).
_FULL = object()


def _contract_env(kernel: str, plan, bank) -> dict:
    """Closed-world bindings under which the guard sends are evaluated."""
    front, back = plan.analysis_guard_depths(bank)
    s_front, s_back = plan.synthesis_guard_depths(bank)
    return {
        "kernel": kernel,
        "m": bank.length,
        "front": front,
        "back": back,
        "s_front": s_front,
        "s_back": s_back,
        "guard_depth": max(1, bank.length // 2),
        "sweep": plan.traversal == "single-loop",
        "nranks": 4,
        "distribute": True,
        "collect": True,
        "restore": None,
        "checkpoint_interval": 0,
        "decomp.pcols": 2,
        "decomp.prows": 2,
        "rows": _SIZE,
        "cols": _SIZE,
        "length": _SIZE,
        "levels": 2,
    }


def _eval_int(node: ast.expr | None, env: dict) -> int | None:
    if node is None:
        return None
    value = eval_static(node, env)
    if value is OPAQUE or not isinstance(value, int) or isinstance(value, bool):
        return None
    return value


def _slice_depth(node: ast.expr, env: dict):
    """Depth selected by one subscript dimension: an int, ``_FULL`` for an
    unbounded slice, or ``None`` when undecidable/not-a-slice."""
    if not isinstance(node, ast.Slice):
        return None  # an index expression selects a scalar, not a depth
    if node.step is not None:
        return None
    if node.lower is None and node.upper is None:
        return _FULL
    if node.lower is None:
        upper = _eval_int(node.upper, env)
        if upper is None or upper < 0:
            return None
        return upper
    if node.upper is None:
        lower = _eval_int(node.lower, env)
        if lower is None:
            return None
        return -lower if lower < 0 else _SIZE - lower
    lower, upper = _eval_int(node.lower, env), _eval_int(node.upper, env)
    if lower is None or upper is None or lower < 0 or upper < lower:
        return None
    return upper - lower


_WRAPPER_CALLS = ("stack", "ascontiguousarray", "asarray", "array", "concatenate")


def payload_depth(
    expr: ast.expr | None, payload_env: dict, env: dict, _depth: int = 0
) -> int | None:
    """Row/sample count a send payload carries, or ``None`` if undecidable."""
    if expr is None or _depth > 8:
        return None
    if isinstance(expr, ast.Name):
        return payload_depth(payload_env.get(expr.id), payload_env, env, _depth + 1)
    if isinstance(expr, ast.Subscript):
        sl = expr.slice
        dims = sl.elts if isinstance(sl, ast.Tuple) else [sl]
        depths = [_slice_depth(d, env) for d in dims]
        bounded = [d for d in depths if d is not None and d is not _FULL]
        if len(bounded) == 1 and all(d is not None for d in depths):
            return bounded[0]
        return None
    if isinstance(expr, (ast.List, ast.Tuple)):
        inner = {payload_depth(e, payload_env, env, _depth + 1) for e in expr.elts}
        return inner.pop() if len(inner) == 1 else None
    if isinstance(expr, ast.ListComp):
        return payload_depth(expr.elt, payload_env, env, _depth + 1)
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Attribute) and func.attr == "copy" and not expr.args:
            return payload_depth(func.value, payload_env, env, _depth + 1)
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name in _WRAPPER_CALLS and expr.args:
            return payload_depth(expr.args[0], payload_env, env, _depth + 1)
        return None
    return None


def check_guard_depths(proto, paths: dict) -> list:
    """PROTO-GUARD-DEPTH-MISMATCH findings for one wavelet protocol."""
    from repro.machines.tags import GUARD_ROLES
    from repro.wavelet import filter_bank_for_length
    from repro.wavelet.plan import KERNEL_NAMES, parse_kernel_spec

    phase = proto.program.phase
    findings: list = []
    reported: set = set()
    for kernel in KERNEL_NAMES:
        plan = parse_kernel_spec(kernel)
        for length in REPRESENTATIVE_BANK_LENGTHS:
            bank = filter_bank_for_length(length)
            env = _contract_env(kernel, plan, bank)
            expected = {
                "analysis": (env["front"], env["back"]),
                "synthesis": (env["s_front"], env["s_back"]),
            }[phase]
            for ev in proto.events:
                if ev.kind != "send" or ev.tag not in GUARD_ROLES:
                    continue
                side = getattr(GUARD_ROLES[ev.tag], phase)
                if side is None or (ev.module, ev.line) in reported:
                    continue
                if not eval_atoms(ev.atoms, env):
                    continue  # this send does not run under this kernel
                depth = payload_depth(ev.payload, ev.payload_env, env)
                if depth is None:
                    continue  # undecidable slice: contract not checkable here
                want = expected[0] if side == "front" else expected[1]
                if depth != want:
                    reported.add((ev.module, ev.line))
                    findings.append(
                        Finding(
                            rule_id=RULE_GUARD_DEPTH.id,
                            module=ev.module,
                            path=paths.get(ev.module, "<memory>"),
                            line=ev.line,
                            message=f"{proto.func}() ships {depth} {side}-guard "
                            f"row(s) on tag {ev.tag} but the {kernel!r} plan's "
                            f"{phase} depth for a length-{length} bank is {want}",
                        )
                    )
    return findings
