"""Static communication/determinism analysis for the SPMD dialect.

Dynamic certification (the Netzer-Miller race detector in
:mod:`repro.machines.causality`, the seeded fault fuzzer) only covers the
executions we happen to run; this package analyses the *source* of every
rank program and engine-layer module, so a mismatched tag, a wall-clock
call, or an uncharged kernel is caught for all processor counts at once.
In the spirit of MPI-Checker/MUST, but for the generator-coroutine
``ctx.send``/``ctx.recv`` dialect.

Four rule families:

* **communication** — per-module static communication summaries (tag
  constants, peer expressions, wildcard usage, timeout presence) feed
  cross-module tag-collision and orphan-tag checks, wildcard-receive
  "static race candidate" reporting (a superset of the dynamic detector's
  findings on any traced run), raw-integer-tag hygiene, and a
  missing-timeout check for receives reachable under ``reliable=False``
  fault configs;
* **determinism** — no wall-clock/entropy calls, no unseeded RNG, no
  iteration over sets anywhere or over unsorted dicts in the engine,
  scheduler, and causality layers;
* **charging** — NumPy kernel calls inside rank-program bodies must be
  paired with a ``ctx.compute``/``ctx.charge`` before the next
  communication operation;
* **protocol** (``lint --protocol``) — whole-program symbolic
  verification of every registered SPMD program: rank-parameterized
  send/recv matching under peer-expression inversion, phase-ordered
  static deadlock proofs, rank-uniform collective participation, and the
  plan/guard-depth contract (:mod:`repro.analysis.protocol`,
  :mod:`repro.analysis.contracts`).

Findings carry a rule id, severity, and fix hint; suppression comments
(``# lint: disable=RULE-ID``, ``disable-next=``, ``disable-file=``) and
an optional reviewed baseline file waive known-safe sites.  ``python -m
repro lint`` is the CLI (``--format sarif`` for CI annotation); the CI
``lint`` job gates PRs on a clean run including the protocol pass.
"""

from repro.analysis.comm import CommSite, CommSummary, extract_comm_sites, summarize_comm
from repro.analysis.linter import (
    LintConfig,
    LintReport,
    format_human,
    format_json,
    lint_paths,
    lint_sources,
)
from repro.analysis.protocol import (
    DEFAULT_PROTOCOL_PROGRAMS,
    ProtocolProgram,
    check_protocol,
    concrete_channels,
    extract_protocol,
)
from repro.analysis.rules import ALL_RULES, Finding, Rule, load_baseline, write_baseline
from repro.analysis.sarif import format_sarif, validate_sarif

__all__ = [
    "ALL_RULES",
    "Rule",
    "Finding",
    "CommSite",
    "CommSummary",
    "extract_comm_sites",
    "summarize_comm",
    "LintConfig",
    "LintReport",
    "lint_paths",
    "lint_sources",
    "format_human",
    "format_json",
    "format_sarif",
    "validate_sarif",
    "load_baseline",
    "write_baseline",
    "ProtocolProgram",
    "DEFAULT_PROTOCOL_PROGRAMS",
    "check_protocol",
    "extract_protocol",
    "concrete_channels",
]
