"""Determinism-invariant rules.

The whole repo's value proposition is bit-identical reruns: traces are
sha256-pinned, schedules replay from seeds, and the fault fuzzer shrinks
counterexamples by re-execution.  Any ambient-entropy leak breaks all of
that silently, so these rules ban the sources at the source level:

``DET-WALL-CLOCK``
    Calls that read host wall-clock time or OS entropy
    (``time.time``/``monotonic``/``perf_counter`` and friends,
    ``datetime.now``, ``os.urandom``, ``uuid.uuid1``/``uuid4``).  Virtual
    time comes from the engine; host time is allowed only in the
    benchmark harness behind explicit suppressions.
``DET-UNSEEDED-RNG``
    Draws from global RNG state (``random.*`` module functions,
    ``np.random.*`` legacy draws) and zero-argument constructions of
    ``default_rng()``/``RandomState()``/``Random()``.  All randomness
    must flow from an explicit seed.
``DET-SET-ITERATION``
    ``for`` loops over set displays/comprehensions, ``set()``/
    ``frozenset()`` results, or names locally bound to them (sorted()
    wrapping exempts).  Set iteration order is a hash-function artifact.
``DET-DICT-ITERATION``
    ``for`` loops over ``.items()``/``.keys()``/``.values()`` without a
    ``sorted()`` wrapper, in the *strict* modules (engine, scheduler,
    causality) where iteration order feeds event ordering.  Insertion
    order is deterministic per run but fragile under refactoring, so the
    strict layers must either sort or carry a per-line justification.
"""

from __future__ import annotations

import ast

from repro.analysis.rules import Finding, rule
from repro.analysis.sources import SourceModule

__all__ = ["check_determinism", "DEFAULT_STRICT_MODULES"]

RULE_WALL_CLOCK = rule(
    "DET-WALL-CLOCK",
    "error",
    "wall-clock or OS-entropy call in deterministic code",
    "use engine virtual time (ctx.now / events) or pass timestamps in; "
    "host clocks belong only in the benchmark harness",
)
RULE_UNSEEDED_RNG = rule(
    "DET-UNSEEDED-RNG",
    "error",
    "draw from global/unseeded RNG state",
    "construct np.random.default_rng(seed) / random.Random(seed) from an "
    "explicit seed and thread it through",
)
RULE_SET_ITERATION = rule(
    "DET-SET-ITERATION",
    "error",
    "iteration over a set (hash-order dependent)",
    "iterate sorted(the_set) or keep the collection as a sorted list",
)
RULE_DICT_ITERATION = rule(
    "DET-DICT-ITERATION",
    "warning",
    "unsorted dict iteration in an order-sensitive layer",
    "iterate sorted(d.items()) — or suppress with a justification that "
    "the consumer is order-insensitive",
)

#: Module prefixes where dict-iteration order feeds event ordering.
DEFAULT_STRICT_MODULES = (
    "repro.machines.engine",
    "repro.machines.causality",
    "repro.runtime",
    "repro.scenarios",
    "repro.service",
)

# Part-wise dotted suffixes, matched after expanding the root import
# alias (so ``np.random.rand`` is checked as ``numpy.random.rand`` and a
# Generator method like ``rng.random()`` never matches).
_WALL_CLOCK = (
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "clock_gettime"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
    ("os", "urandom"),
    ("uuid", "uuid1"),
    ("uuid", "uuid4"),
)

#: Global-state draws: ``random.X`` module functions; the same suffix
#: also catches NumPy legacy draws (``numpy.random.X``).
_GLOBAL_DRAWS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "uniform",
        "choice",
        "choices",
        "sample",
        "shuffle",
        "gauss",
        "normalvariate",
        "expovariate",
        "betavariate",
        "seed",
        # numpy.random-only legacy names
        "rand",
        "randn",
        "random_sample",
        "standard_normal",
        "permutation",
    }
)

_RNG_CONSTRUCTORS = frozenset({"default_rng", "RandomState", "Random"})


def _dotted_parts(node: ast.expr) -> list[str] | None:
    parts: list[str] = []
    cursor = node
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if not isinstance(cursor, ast.Name):
        return None
    parts.append(cursor.id)
    parts.reverse()
    return parts


def _import_aliases(tree: ast.Module) -> dict[str, list[str]]:
    """Map local names to the dotted path they denote."""
    aliases: dict[str, list[str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name.split(".")
                else:
                    root = alias.name.split(".")[0]
                    aliases[root] = [root]
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                aliases[alias.asname or alias.name] = node.module.split(".") + [alias.name]
    return aliases


def _expanded(parts: list[str], aliases: dict[str, list[str]]) -> list[str]:
    expansion = aliases.get(parts[0])
    if expansion is None:
        return parts
    return expansion + parts[1:]


def _suffix_match(parts: list[str], suffix: tuple[str, ...]) -> bool:
    return len(parts) >= len(suffix) and tuple(parts[-len(suffix) :]) == suffix


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _is_sorted_wrapped(node: ast.expr) -> bool:
    """``sorted(...)`` (optionally through list()/tuple()/reversed/enumerate)."""
    while (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("list", "tuple", "reversed", "enumerate")
        and node.args
    ):
        node = node.args[0]
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "sorted"
    )


class _DetVisitor(ast.NodeVisitor):
    def __init__(self, module: SourceModule, strict: bool) -> None:
        self.module = module
        self.strict = strict
        self.aliases = _import_aliases(module.tree)
        self.findings: list[Finding] = []
        # Names bound to set-valued expressions, per enclosing scope.
        self._set_names: list[set[str]] = [set()]

    def _emit(self, rule_id: str, line: int, message: str) -> None:
        self.findings.append(
            Finding(
                rule_id=rule_id,
                module=self.module.name,
                path=self.module.path,
                line=line,
                message=message,
            )
        )

    # -- scope tracking ----------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._set_names.append(set())
        self.generic_visit(node)
        self._set_names.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Assign(self, node: ast.Assign) -> None:
        if _is_set_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._set_names[-1].add(target.id)
        else:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._set_names[-1].discard(target.id)
        self.generic_visit(node)

    def _iterates_set(self, node: ast.expr) -> bool:
        if _is_set_expr(node):
            return True
        if isinstance(node, ast.Name):
            return any(node.id in scope for scope in self._set_names)
        return False

    # -- rules -------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        parts = _dotted_parts(node.func)
        if parts is not None:
            expanded = _expanded(parts, self.aliases)
            for suffix in _WALL_CLOCK:
                if _suffix_match(expanded, suffix):
                    self._emit(
                        RULE_WALL_CLOCK.id,
                        node.lineno,
                        f"call to {'.'.join(parts)} reads host "
                        "wall-clock/entropy",
                    )
                    break
            else:
                if (
                    _suffix_match(expanded, ("random", expanded[-1]))
                    and expanded[-1] in _GLOBAL_DRAWS
                    and len(expanded) >= 2
                ):
                    self._emit(
                        RULE_UNSEEDED_RNG.id,
                        node.lineno,
                        f"{'.'.join(parts)} draws from global RNG state",
                    )
                elif (
                    parts[-1] in _RNG_CONSTRUCTORS
                    and not node.args
                    and not node.keywords
                ):
                    self._emit(
                        RULE_UNSEEDED_RNG.id,
                        node.lineno,
                        f"{'.'.join(parts)}() constructed without a seed",
                    )
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if not _is_sorted_wrapped(node.iter):
            if self._iterates_set(node.iter):
                self._emit(
                    RULE_SET_ITERATION.id,
                    node.lineno,
                    "for-loop over a set: iteration order is "
                    "hash-dependent",
                )
            elif self.strict and self._is_unsorted_dict_iter(node.iter):
                self._emit(
                    RULE_DICT_ITERATION.id,
                    node.lineno,
                    "for-loop over unsorted dict view in an "
                    "order-sensitive layer",
                )
        self.generic_visit(node)

    @staticmethod
    def _is_unsorted_dict_iter(node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("items", "keys", "values")
            and not node.args
            and not node.keywords
        )


def check_determinism(
    modules: list[SourceModule],
    *,
    strict_modules: tuple[str, ...] = DEFAULT_STRICT_MODULES,
) -> list[Finding]:
    """Run the determinism rule family over the module set."""
    findings: list[Finding] = []
    for module in modules:
        strict = any(module.name.startswith(prefix) for prefix in strict_modules)
        visitor = _DetVisitor(module, strict=strict)
        visitor.visit(module.tree)
        findings.extend(visitor.findings)
    return findings
