"""SARIF 2.1.0 export for lint reports.

SARIF (Static Analysis Results Interchange Format) is the document
format CI forges ingest to annotate findings on changed lines of a pull
request.  ``format_sarif`` renders a :class:`~repro.analysis.linter.
LintReport` as one SARIF run; ``validate_sarif`` structurally checks a
document against the subset of the 2.1.0 schema this exporter uses (the
container doesn't ship a JSON-Schema engine, and the checks below are
the ones that matter for ingestion: required members, type shapes, and
``ruleIndex`` referential integrity).
"""

from __future__ import annotations

from repro.analysis.rules import ALL_RULES

__all__ = ["format_sarif", "validate_sarif", "SARIF_SCHEMA_URI", "SARIF_VERSION"]

SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"
SARIF_VERSION = "2.1.0"

_LEVELS = {"error": "error", "warning": "warning"}


def format_sarif(report, *, tool_version: str = "0") -> dict:
    """Render a lint report as a SARIF 2.1.0 document (one run)."""
    rule_ids = sorted(ALL_RULES)
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    rules = [
        {
            "id": rule_id,
            "shortDescription": {"text": ALL_RULES[rule_id].summary},
            "help": {"text": ALL_RULES[rule_id].fix_hint},
            "defaultConfiguration": {
                "level": _LEVELS.get(ALL_RULES[rule_id].severity, "warning")
            },
        }
        for rule_id in rule_ids
    ]
    results = [
        {
            "ruleId": finding.rule_id,
            "ruleIndex": rule_index[finding.rule_id],
            "level": _LEVELS.get(finding.severity, "warning"),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {"startLine": max(1, finding.line)},
                    }
                }
            ],
        }
        for finding in report.findings
        if finding.rule_id in rule_index
    ]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro",
                        "version": tool_version,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def validate_sarif(doc: object) -> list[str]:
    """Structural schema check; returns a list of violations (empty = valid)."""
    errors: list[str] = []

    def need(obj: object, key: str, kind: type, where: str) -> object:
        if not isinstance(obj, dict):
            errors.append(f"{where}: expected object")
            return None
        if key not in obj:
            errors.append(f"{where}: missing required member {key!r}")
            return None
        value = obj[key]
        if not isinstance(value, kind) or (kind is int and isinstance(value, bool)):
            errors.append(f"{where}.{key}: expected {kind.__name__}")
            return None
        return value

    if need(doc, "version", str, "$") not in (None, SARIF_VERSION):
        errors.append(f"$.version: must be {SARIF_VERSION!r}")
    need(doc, "$schema", str, "$")
    runs = need(doc, "runs", list, "$")
    for i, run in enumerate(runs or []):
        where = f"$.runs[{i}]"
        tool = need(run, "tool", dict, where)
        driver = need(tool, "driver", dict, f"{where}.tool") if tool else None
        rules = None
        if driver is not None:
            need(driver, "name", str, f"{where}.tool.driver")
            rules = need(driver, "rules", list, f"{where}.tool.driver")
            for j, rule_obj in enumerate(rules or []):
                rwhere = f"{where}.tool.driver.rules[{j}]"
                need(rule_obj, "id", str, rwhere)
                desc = need(rule_obj, "shortDescription", dict, rwhere)
                if desc is not None:
                    need(desc, "text", str, f"{rwhere}.shortDescription")
        results = need(run, "results", list, where)
        for j, result in enumerate(results or []):
            rwhere = f"{where}.results[{j}]"
            rule_id = need(result, "ruleId", str, rwhere)
            message = need(result, "message", dict, rwhere)
            if message is not None:
                need(message, "text", str, f"{rwhere}.message")
            level = result.get("level") if isinstance(result, dict) else None
            if level is not None and level not in ("none", "note", "warning", "error"):
                errors.append(f"{rwhere}.level: invalid level {level!r}")
            index = result.get("ruleIndex") if isinstance(result, dict) else None
            if index is not None:
                if not isinstance(index, int) or isinstance(index, bool):
                    errors.append(f"{rwhere}.ruleIndex: expected int")
                elif rules is not None and not (
                    0 <= index < len(rules)
                    and isinstance(rules[index], dict)
                    and rules[index].get("id") == rule_id
                ):
                    errors.append(f"{rwhere}.ruleIndex: does not point at ruleId")
            locations = result.get("locations") if isinstance(result, dict) else None
            if locations is not None:
                for k, loc in enumerate(locations if isinstance(locations, list) else []):
                    lwhere = f"{rwhere}.locations[{k}]"
                    phys = need(loc, "physicalLocation", dict, lwhere)
                    if phys is None:
                        continue
                    art = need(phys, "artifactLocation", dict, f"{lwhere}.physicalLocation")
                    if art is not None:
                        need(art, "uri", str, f"{lwhere}.physicalLocation.artifactLocation")
                    region = phys.get("region")
                    if region is not None:
                        line = need(region, "startLine", int, f"{lwhere}.physicalLocation.region")
                        if isinstance(line, int) and line < 1:
                            errors.append(
                                f"{lwhere}.physicalLocation.region.startLine: must be >= 1"
                            )
    return errors
