"""Linter driver: configuration, orchestration, and report formatting.

``lint_paths`` discovers source files (defaulting to the installed
``repro`` package), runs the three rule families, applies per-line
suppressions and the optional baseline, and returns a
:class:`LintReport`.  ``python -m repro lint`` is the CLI wrapper; the
exit code is non-zero whenever any unwaived finding remains, so the CI
gate needs no extra logic.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.analysis.charging import DEFAULT_KERNEL_CALLS, check_charging
from repro.analysis.comm import CommSummary, check_comm
from repro.analysis.determinism import DEFAULT_STRICT_MODULES, check_determinism
from repro.analysis.rules import (
    ALL_RULES,
    Baseline,
    Finding,
    apply_suppressions,
    load_baseline,
)
from repro.analysis.sources import SourceModule, discover_package, modules_from_sources

__all__ = [
    "LintConfig",
    "LintReport",
    "lint_modules",
    "lint_paths",
    "lint_sources",
    "format_human",
    "format_json",
]


@dataclass
class LintConfig:
    """Knobs for one linter run (defaults fit the repo itself)."""

    #: Module prefixes where unsorted dict iteration is reported.
    strict_modules: tuple[str, ...] = DEFAULT_STRICT_MODULES
    #: Module prefixes whose receives run over the raw lossy channel
    #: (``reliable=False``) and therefore must carry ``timeout_s``.
    raw_fault_modules: tuple[str, ...] = ("repro.machines.faults.transport",)
    #: Function names treated as compute kernels by the charging rule.
    kernel_calls: frozenset[str] = DEFAULT_KERNEL_CALLS
    #: Optional reviewed baseline of pre-existing findings.
    baseline: Baseline | None = None
    #: Cross-check minted tags against repro.machines.tags.REGISTRY.
    check_registry: bool = True
    #: Run the whole-program protocol verifier (PROTO-* rules) over the
    #: registered SPMD programs present in the analyzed set.
    protocol: bool = False
    #: Override the program table (fixtures/tests); ``None`` means
    #: :data:`repro.analysis.protocol.DEFAULT_PROTOCOL_PROGRAMS`.
    protocol_programs: tuple | None = None


@dataclass
class LintReport:
    """Outcome of one linter run."""

    findings: list[Finding]  # unwaived, sorted by (module, line, rule)
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    summaries: list[CommSummary] = field(default_factory=list)
    modules_checked: int = 0

    @property
    def counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return counts

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity == "error")

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.findings if f.severity == "warning")

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0


def lint_modules(modules: list[SourceModule], config: LintConfig | None = None) -> LintReport:
    """Run every rule family over already-parsed modules."""
    config = config or LintConfig()
    comm_findings, summaries = check_comm(
        modules,
        raw_fault_modules=config.raw_fault_modules,
        check_registry=config.check_registry,
    )
    findings = list(comm_findings)
    findings.extend(check_determinism(modules, strict_modules=config.strict_modules))
    findings.extend(check_charging(modules, kernel_calls=config.kernel_calls))
    if config.protocol:
        from repro.analysis.protocol import check_protocol

        proto_findings, _protocols = check_protocol(
            modules, programs=config.protocol_programs
        )
        findings.extend(proto_findings)

    suppression_maps = {m.name: m.suppressions for m in modules}
    kept, waived = apply_suppressions(findings, suppression_maps)
    baselined: list[Finding] = []
    if config.baseline is not None:
        kept, baselined = config.baseline.filter(kept)
    return LintReport(
        findings=sorted(kept, key=Finding.sort_key),
        suppressed=sorted(waived, key=Finding.sort_key),
        baselined=sorted(baselined, key=Finding.sort_key),
        summaries=summaries,
        modules_checked=len(modules),
    )


def _default_root() -> str:
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def _module_name_for(path: str) -> str:
    """Best-effort dotted name for a lone file path."""
    path = os.path.abspath(path)
    parts: list[str] = [os.path.splitext(os.path.basename(path))[0]]
    cursor = os.path.dirname(path)
    while os.path.exists(os.path.join(cursor, "__init__.py")):
        parts.append(os.path.basename(cursor))
        cursor = os.path.dirname(cursor)
    name = ".".join(reversed(parts))
    return name[: -len(".__init__")] if name.endswith(".__init__") else name


def lint_paths(
    paths: list[str] | None = None,
    config: LintConfig | None = None,
    baseline_path: str | None = None,
) -> LintReport:
    """Lint files/packages on disk (default: the ``repro`` package)."""
    config = config or LintConfig()
    if baseline_path is not None:
        config.baseline = load_baseline(baseline_path)
    modules: list[SourceModule] = []
    for path in paths or [_default_root()]:
        if os.path.isdir(path):
            modules.extend(discover_package(path))
        else:
            with open(path, encoding="utf-8") as fh:
                source = fh.read()
            modules.append(
                SourceModule.from_source(_module_name_for(path), source, path=path)
            )
    return lint_modules(modules, config)


def lint_sources(sources: dict[str, str], config: LintConfig | None = None) -> LintReport:
    """Lint in-memory ``{dotted_name: source}`` (fixtures and tests)."""
    return lint_modules(modules_from_sources(sources), config)


def format_human(report: LintReport, *, verbose: bool = False) -> str:
    """Compiler-style report: ``path:line: severity RULE-ID message``."""
    lines: list[str] = []
    for finding in report.findings:
        lines.append(
            f"{finding.path}:{finding.line}: {finding.severity} "
            f"[{finding.rule_id}] {finding.message}"
        )
        lines.append(f"    hint: {finding.fix_hint}")
    if verbose:
        for finding in report.suppressed:
            lines.append(
                f"{finding.path}:{finding.line}: suppressed [{finding.rule_id}] "
                f"{finding.message}"
            )
        for finding in report.baselined:
            lines.append(
                f"{finding.path}:{finding.line}: baselined [{finding.rule_id}] "
                f"{finding.message}"
            )
    tail = (
        f"{report.modules_checked} modules checked: "
        f"{report.errors} error(s), {report.warnings} warning(s)"
    )
    extras = []
    if report.suppressed:
        extras.append(f"{len(report.suppressed)} suppressed")
    if report.baselined:
        extras.append(f"{len(report.baselined)} baselined")
    if extras:
        tail += f" ({', '.join(extras)})"
    lines.append(tail)
    return "\n".join(lines)


def format_json(report: LintReport) -> dict:
    """Machine-readable report document (stable schema for CI)."""
    return {
        "schema": "repro.lint.report/v1",
        "modules_checked": report.modules_checked,
        "errors": report.errors,
        "warnings": report.warnings,
        "counts": dict(sorted(report.counts.items())),
        "findings": [
            {
                "rule": f.rule_id,
                "severity": f.severity,
                "module": f.module,
                "path": f.path,
                "line": f.line,
                "message": f.message,
                "fix_hint": f.fix_hint,
            }
            for f in report.findings
        ],
        "suppressed": len(report.suppressed),
        "baselined": len(report.baselined),
        "rules": {
            rule_id: {
                "severity": r.severity,
                "summary": r.summary,
            }
            for rule_id, r in sorted(ALL_RULES.items())
        },
    }


def format_comm_summary(report: LintReport) -> str:
    """Human-readable dump of the static communication summaries."""
    lines: list[str] = []
    for summary in report.summaries:
        lines.append(f"{summary.module}:")
        for site in summary.sites:
            tag = site.tag_text if site.tag_value is None else f"{site.tag_text}={site.tag_value}"
            extra = ""
            if site.kind == "recv":
                flags = []
                if site.wildcard_src:
                    flags.append("ANY_SOURCE")
                if site.wildcard_tag:
                    flags.append("ANY_TAG")
                if site.has_timeout:
                    flags.append("timeout")
                if flags:
                    extra = f" [{','.join(flags)}]"
            name = site.collective or site.kind
            lines.append(
                f"  {site.line:>5}  {name:<12} peer={site.peer:<16} tag={tag}{extra}"
            )
    return "\n".join(lines)
