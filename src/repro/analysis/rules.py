"""Rule framework: rule catalogue, findings, suppressions, baselines.

A :class:`Rule` is a stable identifier plus severity and a fix hint; a
:class:`Finding` is one concrete violation at a (module, line).  Two
waiver mechanisms exist, both explicit and reviewable:

* an inline comment ``# lint: disable=RULE-ID`` (comma-separate several
  ids, ``disable=all`` for everything) on the offending line — or, when
  the offending line has no room, ``# lint: disable-next=RULE-ID`` on
  the line above, or ``# lint: disable-file=RULE-ID`` anywhere in the
  module to waive a rule for the whole file — ideally followed by a
  justification;
* a JSON baseline file (``load_baseline``/``write_baseline``) granting a
  per-``(rule, module)`` allowance of pre-existing findings, so the CI
  gate can be landed before a legacy tree is fully clean.  The repo's own
  baseline is empty and pinned empty by a test.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field

__all__ = [
    "Rule",
    "Finding",
    "ALL_RULES",
    "rule",
    "parse_suppressions",
    "apply_suppressions",
    "FILE_SUPPRESSION_LINE",
    "Baseline",
    "load_baseline",
    "write_baseline",
]


@dataclass(frozen=True)
class Rule:
    """One static-analysis rule: stable id, severity, and remediation."""

    id: str
    severity: str  # "error" | "warning"
    summary: str
    fix_hint: str


#: Rule catalogue, id -> Rule (populated by the family modules at import).
ALL_RULES: dict[str, Rule] = {}


def rule(id: str, severity: str, summary: str, fix_hint: str) -> Rule:
    """Register a rule in the catalogue (module-import side effect)."""
    if id in ALL_RULES:
        raise ValueError(f"duplicate rule id {id!r}")
    if severity not in ("error", "warning"):
        raise ValueError(f"bad severity {severity!r} for rule {id!r}")
    r = Rule(id=id, severity=severity, summary=summary, fix_hint=fix_hint)
    ALL_RULES[id] = r
    return r


@dataclass(frozen=True)
class Finding:
    """One violation: rule, location, and a site-specific message."""

    rule_id: str
    module: str
    path: str
    line: int
    message: str

    @property
    def rule(self) -> Rule:
        return ALL_RULES[self.rule_id]

    @property
    def severity(self) -> str:
        return self.rule.severity

    @property
    def fix_hint(self) -> str:
        return self.rule.fix_hint

    def sort_key(self) -> tuple[str, int, str]:
        return (self.module, self.line, self.rule_id)


_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*disable(?P<form>-next|-file)?=(?P<ids>[A-Za-z0-9_,\- ]+)"
)

#: Pseudo-line key under which file-wide suppressions are stored.
FILE_SUPPRESSION_LINE = 0


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map 1-based line numbers to the rule ids disabled on that line.

    Three forms exist: ``disable=`` waives the comment's own line,
    ``disable-next=`` the line below it, and ``disable-file=`` the whole
    module (stored under :data:`FILE_SUPPRESSION_LINE`).  The special id
    ``all`` disables every rule in scope.
    """
    suppressed: dict[int, set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        ids = {part.strip() for part in match.group("ids").split(",") if part.strip()}
        if not ids:
            continue
        form = match.group("form")
        if form == "-next":
            target = lineno + 1
        elif form == "-file":
            target = FILE_SUPPRESSION_LINE
        else:
            target = lineno
        suppressed.setdefault(target, set()).update(ids)
    return suppressed


def apply_suppressions(
    findings: list[Finding], suppressions: dict[str, dict[int, set[str]]]
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into (kept, suppressed) using per-module line maps."""
    kept: list[Finding] = []
    waived: list[Finding] = []
    for finding in findings:
        line_map = suppressions.get(finding.module, {})
        ids = line_map.get(finding.line, set()) | line_map.get(
            FILE_SUPPRESSION_LINE, set()
        )
        if finding.rule_id in ids or "all" in ids:
            waived.append(finding)
        else:
            kept.append(finding)
    return kept, waived


@dataclass
class Baseline:
    """Reviewed allowance of pre-existing findings per ``(rule, module)``."""

    allowances: dict[tuple[str, str], int] = field(default_factory=dict)

    def filter(self, findings: list[Finding]) -> tuple[list[Finding], list[Finding]]:
        """Split findings into (new, baselined), consuming allowances in
        (module, line) order so the waiver set is deterministic."""
        budget = dict(self.allowances)
        kept: list[Finding] = []
        waived: list[Finding] = []
        for finding in sorted(findings, key=Finding.sort_key):
            key = (finding.rule_id, finding.module)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                waived.append(finding)
            else:
                kept.append(finding)
        return kept, waived

    @property
    def total(self) -> int:
        return sum(self.allowances.values())


def load_baseline(path: str) -> Baseline:
    """Read a baseline JSON file written by :func:`write_baseline`."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != "repro.lint.baseline/v1":
        raise ValueError(f"{path}: not a repro lint baseline file")
    allowances: dict[tuple[str, str], int] = {}
    for entry in doc.get("entries", []):
        key = (str(entry["rule"]), str(entry["module"]))
        allowances[key] = allowances.get(key, 0) + int(entry.get("count", 1))
    return Baseline(allowances=allowances)


def write_baseline(path: str, findings: list[Finding]) -> dict:
    """Write the current findings as a baseline file; returns the doc."""
    counts: dict[tuple[str, str], int] = {}
    for finding in findings:
        key = (finding.rule_id, finding.module)
        counts[key] = counts.get(key, 0) + 1
    doc = {
        "schema": "repro.lint.baseline/v1",
        "entries": [
            {"rule": rule_id, "module": module, "count": count}
            for (rule_id, module), count in sorted(counts.items())
        ],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc
