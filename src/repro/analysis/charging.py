"""Virtual-time charging discipline for rank-program bodies.

The engine only knows about work it is told about: a NumPy kernel call
inside a program body is free in virtual time unless the program charges
it (``yield ctx.compute(flops)`` / ``yield ctx.charge(seconds)``).  An
uncharged kernel silently skews every speedup curve the repo produces,
so this rule enforces the pairing statically:

``CHG-UNCHARGED-KERNEL``
    A known kernel call in a rank-program body (a generator whose first
    parameter is ``ctx``) with no ``ctx.compute``/``ctx.charge``/
    ``ctx.elapse`` yield between it and the next communication operation
    (``ctx.send``/``ctx.recv``/``ctx.checkpoint``, or a ``yield from``
    of a collective) or the end of the body.

The check is a small abstract interpretation over the statement list: a
*pending* set of uncharged kernel calls flows through the body; charging
yields clear it, communication yields flush it (emitting findings),
``yield from`` of an unknown helper clears it without findings (the
helper may charge internally — helpers that are themselves ``ctx``
generators are analyzed on their own).  ``if``/``else`` branches are
analyzed independently and joined by union; loop bodies run twice so a
kernel pending at the bottom of a loop meets a communication at the top.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.comm import COLLECTIVE_FUNCS
from repro.analysis.rules import Finding, rule
from repro.analysis.sources import SourceModule

__all__ = ["check_charging", "DEFAULT_KERNEL_CALLS"]

RULE_UNCHARGED = rule(
    "CHG-UNCHARGED-KERNEL",
    "error",
    "kernel call in a program body never charged to virtual time",
    "follow the kernel with `yield ctx.compute(flops)` (or ctx.charge) "
    "before the next communication op",
)

#: Compute kernels the repo's programs call — wavelet filter/lifting
#: kernels, the n-body and PIC physics stages — plus dense NumPy ops.
DEFAULT_KERNEL_CALLS = frozenset(
    {
        "analyze_axis",
        "analyze_axis_valid",
        "synthesize_axis",
        "synthesize_axis_valid",
        "lifting_analyze_axis",
        "lifting_analyze_axis_valid",
        "lifting_synthesize_axis",
        "lifting_synthesize_axis_valid",
        "single_loop_analyze_2d",
        "single_loop_analyze_valid",
        "single_loop_synthesize_2d",
        "_analyze_full_axis1",
        "tree_forces",
        "build_tree",
        "deposit_cic",
        "gather_field",
        "solve_poisson",
        "electric_field",
        "parallel_poisson",
        "parallel_electric_field",
        "push_particles",
    }
)

#: Dense NumPy entry points (matched as ``numpy...<name>`` after alias
#: expansion, so a local helper named ``dot`` is not confused with
#: ``np.dot``).
_NUMPY_KERNELS = frozenset(
    {
        "einsum",
        "matmul",
        "tensordot",
        "dot",
        "convolve",
        "correlate",
        "fft",
        "ifft",
        "fft2",
        "ifft2",
        "rfft",
        "irfft",
        "solve",
        "lstsq",
        "svd",
        "eig",
        "eigh",
        "inv",
    }
)

_CHARGE_METHODS = ("compute", "charge", "elapse")
_FLUSH_METHODS = ("send", "recv", "checkpoint")


@dataclass(frozen=True)
class _Pending:
    name: str
    line: int


def _dotted_parts(node: ast.expr) -> list[str] | None:
    parts: list[str] = []
    cursor = node
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if not isinstance(cursor, ast.Name):
        return None
    parts.append(cursor.id)
    parts.reverse()
    return parts


def _numpy_aliases(tree: ast.Module) -> set[str]:
    """Local names bound to the numpy package (``np``, ``numpy``...)."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy" or alias.name.startswith("numpy."):
                    aliases.add(alias.asname or alias.name.split(".")[0])
    return aliases


def _is_program(node: ast.FunctionDef) -> bool:
    """A rank program: first parameter named ``ctx`` and a generator."""
    args = node.args.posonlyargs + node.args.args
    if not args or args[0].arg != "ctx":
        return False
    for child in ast.walk(node):
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def _ctx_method(call: ast.Call) -> str | None:
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "ctx"
    ):
        return func.attr
    return None


class _ProgramChecker:
    def __init__(
        self,
        module: SourceModule,
        kernel_calls: frozenset[str],
        numpy_aliases: set[str],
    ) -> None:
        self.module = module
        self.kernel_calls = kernel_calls
        self.numpy_aliases = numpy_aliases
        self.findings: list[Finding] = []

    # -- kernel-call scan --------------------------------------------------

    def _kernels_in(self, node: ast.AST) -> list[_Pending]:
        found: list[_Pending] = []
        for child in ast.walk(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if not isinstance(child, ast.Call):
                continue
            parts = _dotted_parts(child.func)
            if parts is None:
                continue
            name = parts[-1]
            if name in self.kernel_calls:
                found.append(_Pending(name=".".join(parts), line=child.lineno))
            elif (
                len(parts) >= 2
                and parts[0] in self.numpy_aliases
                and name in _NUMPY_KERNELS
            ):
                found.append(_Pending(name=".".join(parts), line=child.lineno))
        return found

    # -- dataflow ----------------------------------------------------------

    def _flush(self, pending: set[_Pending], reason: str, line: int) -> set[_Pending]:
        for item in sorted(pending, key=lambda p: (p.line, p.name)):
            self.findings.append(
                Finding(
                    rule_id=RULE_UNCHARGED.id,
                    module=self.module.name,
                    path=self.module.path,
                    line=item.line,
                    message=f"{item.name}() is never charged "
                    f"(yield ctx.compute/charge) before {reason} at "
                    f"line {line}",
                )
            )
        return set()

    def _yield_effect(self, stmt: ast.stmt) -> tuple[str, int] | None:
        """Classify the yield carried by this statement, if any.

        Returns ("charge"|"flush"|"neutral", line) or None.
        """
        value: ast.expr | None = None
        if isinstance(stmt, ast.Expr):
            value = stmt.value
        elif isinstance(stmt, ast.Assign):
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            value = stmt.value
        elif isinstance(stmt, ast.AugAssign):
            value = stmt.value
        elif isinstance(stmt, ast.Return):
            value = stmt.value
        if isinstance(value, ast.Yield) and isinstance(value.value, ast.Call):
            method = _ctx_method(value.value)
            if method in _CHARGE_METHODS:
                return ("charge", stmt.lineno)
            if method in _FLUSH_METHODS:
                return (f"ctx.{method}", stmt.lineno)
            return None
        if isinstance(value, ast.YieldFrom):
            call = value.value
            if isinstance(call, ast.Call):
                parts = _dotted_parts(call.func)
                name = parts[-1] if parts else None
                if name in COLLECTIVE_FUNCS:
                    return (f"collective {name}", stmt.lineno)
            # Unknown subroutine: it may charge internally (it is checked
            # on its own if it is a ctx generator) — clear, no findings.
            return ("neutral", stmt.lineno)
        return None

    def _run_block(self, body: list[ast.stmt], pending: set[_Pending]) -> set[_Pending]:
        for stmt in body:
            pending = self._run_stmt(stmt, pending)
        return pending

    def _run_stmt(self, stmt: ast.stmt, pending: set[_Pending]) -> set[_Pending]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return pending  # nested defs are analyzed separately
        if isinstance(stmt, ast.If):
            pending = pending | set(self._kernels_in(stmt.test))
            then_out = self._run_block(stmt.body, set(pending))
            else_out = self._run_block(stmt.orelse, set(pending))
            return then_out | else_out
        if isinstance(stmt, (ast.For, ast.While)):
            header = stmt.iter if isinstance(stmt, ast.For) else stmt.test
            pending = pending | set(self._kernels_in(header))
            # Two passes reach the fixpoint: pass one discovers what the
            # body leaves pending, pass two feeds it back to the top so a
            # loop-carried kernel meets the communication op at the head.
            once = self._run_block(stmt.body, set(pending))
            twice = self._run_block(stmt.body, set(pending) | once)
            out = pending | once | twice
            return self._run_block(stmt.orelse, out)
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                pending = pending | set(self._kernels_in(item.context_expr))
            return self._run_block(stmt.body, pending)
        if isinstance(stmt, ast.Try):
            out = self._run_block(stmt.body, set(pending))
            for handler in stmt.handlers:
                out = out | self._run_block(handler.body, set(pending))
            out = self._run_block(stmt.orelse, out)
            return self._run_block(stmt.finalbody, out)

        # Simple statement: note its kernels, then apply its yield effect.
        pending = pending | set(self._kernels_in(stmt))
        effect = self._yield_effect(stmt)
        if effect is not None:
            kind, line = effect
            if kind == "charge" or kind == "neutral":
                return set()
            return self._flush(pending, kind, line)
        return pending

    def run(self, func: ast.FunctionDef) -> None:
        pending = self._run_block(func.body, set())
        end = func.body[-1].lineno if func.body else func.lineno
        self._flush(pending, "end of program body", end)


def check_charging(
    modules: list[SourceModule],
    *,
    kernel_calls: frozenset[str] = DEFAULT_KERNEL_CALLS,
) -> list[Finding]:
    """Run the charging rule over every rank-program body."""
    findings: list[Finding] = []
    for module in modules:
        aliases = _numpy_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.FunctionDef) and _is_program(node):
                checker = _ProgramChecker(module, kernel_calls, aliases)
                checker.run(node)
                findings.extend(checker.findings)
    return findings
