"""Symbolic protocol extraction and whole-program communication checks.

The communication rules in :mod:`repro.analysis.comm` are *per-site*: a
tag collision or a missing timeout is visible at one call site.  Whether
the program's sends and receives actually **pair up across ranks**, and
whether the exchange order can deadlock, are properties of the whole
rank-parameterized protocol — this module checks them statically, for
every processor count at once.

For each registered SPMD program (:data:`DEFAULT_PROTOCOL_PROGRAMS`) an
abstract interpreter walks the program AST — inlining ``yield from``
helper generators in the same module or imported from analyzed
``repro.*`` modules — and extracts an ordered sequence of
:class:`ProtoEvent`\\ s: symbolic sends, receives, and collectives, each
carrying its resolved tag, its :class:`~repro.analysis.peers.Peer`
expression, the :class:`~repro.analysis.peers.RankGuard` and
configuration atoms it executes under, and its enclosing phase loops.

Four rules run over the extracted protocol:

``PROTO-UNMATCHED-SEND`` / ``PROTO-UNMATCHED-RECV``
    Every send must have a structurally matching receive under
    peer-expression inversion (same tag, same phase loops, same
    configuration atoms, equal canonical channel set) and vice versa.
``PROTO-DEADLOCK-CYCLE``
    Phase-ordered wait-for analysis: within each phase-loop region, a
    receive waits on every blocking operation its matched send's
    executors perform earlier in program order; a cycle in that
    site-level graph is reported with the participating sites, and
    acyclicity proves the region deadlock-free for every ``nranks``
    (messages are buffered, sends never block, and rank-uniform loop
    trip counts let the per-iteration argument induct).
``PROTO-COLLECTIVE-DIVERGENCE``
    Collective participation must be rank-uniform: a collective under a
    rank guard hangs every rank the guard excludes.

The guard-depth contract (``PROTO-GUARD-DEPTH-MISMATCH``) lives in
:mod:`repro.analysis.contracts` and reuses the same extracted events.

``concrete_channels`` expands a verified protocol to the concrete
``{(src, dst, tag)}`` set for one configuration; the test suite proves
it a superset of the channels observed in recorded traces (exact on the
striped wavelet program), the same way the wildcard rule was validated
against the dynamic race detector.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.comm import COLLECTIVE_FUNCS
from repro.analysis.contracts import check_guard_depths
from repro.analysis.peers import (
    AXIS_HELPERS,
    Peer,
    RankGuard,
    atoms_compatible,
    channel_key,
    describe_channel,
    eval_atoms,
    guards_intersect,
    intersect_guards,
)
from repro.analysis.rules import Finding, rule
from repro.analysis.sources import ConstEnv, SourceModule

__all__ = [
    "ProtocolProgram",
    "DEFAULT_PROTOCOL_PROGRAMS",
    "ProtoEvent",
    "ProgramProtocol",
    "extract_protocol",
    "check_protocol",
    "concrete_channels",
]

RULE_UNMATCHED_SEND = rule(
    "PROTO-UNMATCHED-SEND",
    "error",
    "symbolic send has no structurally matching receive",
    "add the receive with the inverted peer expression (same tag, same "
    "guards and phase loop), or delete the dead send",
)
RULE_UNMATCHED_RECV = rule(
    "PROTO-UNMATCHED-RECV",
    "error",
    "symbolic receive has no structurally matching send",
    "add the send with the inverted peer expression (same tag, same "
    "guards and phase loop), or delete the dead receive",
)
RULE_DEADLOCK_CYCLE = rule(
    "PROTO-DEADLOCK-CYCLE",
    "error",
    "wait-for cycle among symbolic communication sites",
    "reorder the exchange so every receive's matched send is issued "
    "before any operation the sender blocks on (send-before-recv)",
)
RULE_COLLECTIVE_DIVERGENCE = rule(
    "PROTO-COLLECTIVE-DIVERGENCE",
    "error",
    "collective invoked under a rank-dependent guard",
    "hoist the collective out of the rank conditional; every rank must "
    "participate or the excluded ranks hang the exchange",
)


@dataclass(frozen=True)
class ProtocolProgram:
    """One registered entry point for protocol verification.

    ``phase`` marks wavelet programs whose guard exchanges are bound to
    the kernel plan's ``analysis_guard_depths`` / ``synthesis_guard_depths``
    contract (checked by :mod:`repro.analysis.contracts`).
    """

    module: str
    func: str
    phase: str | None = None  # None | "analysis" | "synthesis"


#: Every registered SPMD rank program (the protocol lint surface).
DEFAULT_PROTOCOL_PROGRAMS: tuple[ProtocolProgram, ...] = (
    ProtocolProgram("repro.wavelet.parallel.spmd", "striped_wavelet_program", "analysis"),
    ProtocolProgram("repro.wavelet.parallel.spmd", "block_wavelet_program", "analysis"),
    ProtocolProgram("repro.wavelet.parallel.spmd_1d", "dwt_1d_program", "analysis"),
    ProtocolProgram("repro.wavelet.parallel.spmd_1d", "idwt_1d_program", "synthesis"),
    ProtocolProgram(
        "repro.wavelet.parallel.spmd_reconstruct", "striped_reconstruct_program", "synthesis"
    ),
    ProtocolProgram("repro.nbody.parallel", "manager_worker_program"),
    ProtocolProgram("repro.nbody.parallel", "replicated_program"),
    ProtocolProgram("repro.pic.parallel", "pic_program"),
)


@dataclass(frozen=True)
class ProtoEvent:
    """One symbolic communication event in extraction order."""

    index: int
    kind: str  # "send" | "recv" | "collective"
    module: str
    line: int
    peer: Peer | None
    tag: int | None
    tag_text: str
    guard: RankGuard
    atoms: frozenset  # of (condition text, polarity)
    loops: tuple  # enclosing phase-loop line numbers
    payload: ast.expr | None = None
    payload_env: dict = field(default_factory=dict, hash=False, compare=False)
    collective: str | None = None
    root: int | None = None

    def site(self) -> str:
        what = self.collective or self.kind
        return f"{what}@{self.module}:{self.line}"


@dataclass
class ProgramProtocol:
    """The extracted protocol of one rank program."""

    program: ProtocolProgram
    events: list
    matches: list = field(default_factory=list)  # (send, recv) pairs

    @property
    def module(self) -> str:
        return self.program.module

    @property
    def func(self) -> str:
        return self.program.func


# -- extraction ------------------------------------------------------------


class _Frame:
    """Per-(inlined-)function symbol bindings."""

    def __init__(self) -> None:
        self.special: dict[str, str] = {}  # name -> "rank" | "nranks"
        self.peers: dict[str, Peer] = {}
        self.payloads: dict[str, ast.expr] = {}


_MAX_INLINE_DEPTH = 8


class _Extractor:
    def __init__(self, module_map: dict, spec: ProtocolProgram) -> None:
        self.module_map = module_map
        self.spec = spec
        self.events: list = []
        self._index = 0
        self._envs: dict[str, ConstEnv] = {}
        self._inline_stack: list = []
        # Walk state (saved/restored around inlining).
        self.module: SourceModule = module_map[spec.module]
        self.env: ConstEnv = self._env_for(spec.module)
        self.frame = _Frame()
        self.guard = RankGuard("all")
        self.atoms: tuple = ()
        self.loops: tuple = ()

    # -- module-level caches ----------------------------------------------

    def _env_for(self, name: str) -> ConstEnv:
        if name not in self._envs:
            self._envs[name] = ConstEnv(self.module_map[name])
        return self._envs[name]

    @staticmethod
    def _functions(module: SourceModule) -> dict:
        return {
            node.name: node
            for node in module.tree.body
            if isinstance(node, ast.FunctionDef)
        }

    @staticmethod
    def _imports(module: SourceModule) -> dict:
        table: dict[str, tuple] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    table[alias.asname or alias.name] = (node.module, alias.name)
        return table

    # -- entry point -------------------------------------------------------

    def extract(self) -> ProgramProtocol | None:
        funcdef = self._functions(self.module).get(self.spec.func)
        if funcdef is None:
            return None
        self._walk_body(funcdef.body)
        return ProgramProtocol(program=self.spec, events=self.events)

    # -- statement walk ----------------------------------------------------

    def _walk_body(self, body: list) -> bool:
        """Walk statements in order; True when the body always terminates
        (returns/raises) before falling through."""
        for stmt in body:
            if self._walk_stmt(stmt):
                return True
        return False

    def _walk_stmt(self, stmt: ast.stmt) -> bool:
        if isinstance(stmt, ast.If):
            return self._walk_if(stmt)
        if isinstance(stmt, ast.For):
            self._walk_for(stmt)
            return False
        if isinstance(stmt, ast.While):
            self.loops = self.loops + (stmt.lineno,)
            try:
                self._walk_body(stmt.body)
            finally:
                self.loops = self.loops[:-1]
            self._walk_body(stmt.orelse)
            return False
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self._scan_yields(stmt)
            return True
        if isinstance(stmt, (ast.With, ast.Try)):
            # Conservative: walk every sub-body in order, no termination claim.
            for part in ast.iter_child_nodes(stmt):
                if isinstance(part, ast.stmt):
                    self._walk_stmt(part)
                elif hasattr(part, "body"):
                    self._walk_body(part.body)  # type: ignore[attr-defined]
            return False
        if isinstance(stmt, ast.Assign):
            self._scan_yields(stmt)
            self._record_assign(stmt)
            return False
        if isinstance(stmt, ast.AnnAssign):
            self._scan_yields(stmt)
            if stmt.value is not None and isinstance(stmt.target, ast.Name):
                self._record_binding(stmt.target, stmt.value)
            return False
        self._scan_yields(stmt)
        return False

    def _walk_if(self, stmt: ast.If) -> bool:
        rank_test = self._rank_test(stmt.test)
        saved_guard, saved_atoms = self.guard, self.atoms
        if rank_test is not None:
            then_guard, else_guard = rank_test
            self.guard = intersect_guards(saved_guard, then_guard)
            body_done = self._walk_body(stmt.body) if self.guard.kind != "none" else False
            self.guard = intersect_guards(saved_guard, else_guard)
            else_done = (
                self._walk_body(stmt.orelse)
                if stmt.orelse and self.guard.kind != "none"
                else False
            )
            self.guard = saved_guard
            if body_done and (else_done or not stmt.orelse):
                if not stmt.orelse:
                    # The taken branch never falls through: the rest of
                    # this body runs under the negated guard only.
                    self.guard = intersect_guards(saved_guard, else_guard)
                    return False
                return else_done
            if else_done and stmt.orelse and not body_done:
                self.guard = intersect_guards(saved_guard, then_guard)
            return False
        text = _normalize(stmt.test)
        self.atoms = saved_atoms + ((text, True),)
        body_done = self._walk_body(stmt.body)
        self.atoms = saved_atoms + ((text, False),)
        else_done = self._walk_body(stmt.orelse) if stmt.orelse else False
        self.atoms = saved_atoms
        if body_done and else_done:
            return True
        if body_done and not stmt.orelse:
            self.atoms = saved_atoms + ((text, False),)
        elif else_done and stmt.orelse and not body_done:
            self.atoms = saved_atoms + ((text, True),)
        return False

    def _walk_for(self, stmt: ast.For) -> None:
        fan_lo = self._fan_range(stmt)
        if fan_lo is not None and isinstance(stmt.target, ast.Name):
            self.frame.peers[stmt.target.id] = Peer(
                "fanrange", fan_lo, text=_normalize(stmt.iter)
            )
            self._walk_body(stmt.body)
        else:
            self.loops = self.loops + (stmt.lineno,)
            try:
                self._walk_body(stmt.body)
            finally:
                self.loops = self.loops[:-1]
        self._walk_body(stmt.orelse)

    def _fan_range(self, stmt: ast.For) -> int | None:
        """``for v in range(lo, nranks)`` fans one rank over the others;
        any other loop is a phase loop."""
        it = stmt.iter
        if not (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Name)
            and it.func.id == "range"
            and not it.keywords
        ):
            return None
        if len(it.args) == 1:
            lo_node, hi = None, it.args[0]
        elif len(it.args) == 2:
            lo_node, hi = it.args
        else:
            return None
        if not self._is_nranks(hi):
            return None
        if lo_node is None:
            return 0
        resolved = self.env.resolve(lo_node)
        return resolved.value if resolved is not None else None

    # -- expression scan ---------------------------------------------------

    def _scan_yields(self, node: ast.AST, extra: tuple = ()) -> None:
        """Find every yield/yield-from in a statement, tracking ternary
        (``IfExp``) conditions as extra guard atoms."""
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return
        if isinstance(node, ast.IfExp):
            self._scan_yields(node.test, extra)
            text = _normalize(node.test)
            self._scan_yields(node.body, extra + ((text, True),))
            self._scan_yields(node.orelse, extra + ((text, False),))
            return
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            self._handle_yield(node, extra)
            return
        for child in ast.iter_child_nodes(node):
            self._scan_yields(child, extra)

    def _handle_yield(self, node: ast.AST, extra: tuple) -> None:
        value = node.value  # type: ignore[attr-defined]
        if not isinstance(value, ast.Call):
            return
        call = value
        if isinstance(node, ast.YieldFrom):
            name = _call_name(call)
            if (
                name in COLLECTIVE_FUNCS
                and call.args
                and isinstance(call.args[0], ast.Name)
                and call.args[0].id == "ctx"
            ):
                self._record_collective(call, name)
            elif name is not None:
                self._inline(name, call)
            return
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "ctx"
            and func.attr in ("send", "recv")
        ):
            self._record_comm(call, func.attr, extra)

    def _inline(self, name: str, call: ast.Call) -> None:
        """Inline a ``yield from helper(ctx, ...)`` generator call."""
        if not (
            call.args and isinstance(call.args[0], ast.Name) and call.args[0].id == "ctx"
        ):
            return
        target_module, target_func = self.module.name, name
        if name not in self._functions(self.module):
            imported = self._imports(self.module).get(name)
            if imported is None:
                return
            target_module, target_func = imported[0], imported[1]
            if target_module not in self.module_map:
                return
            if target_func not in self._functions(self.module_map[target_module]):
                return
        key = (target_module, target_func)
        if key in self._inline_stack or len(self._inline_stack) >= _MAX_INLINE_DEPTH:
            return
        funcdef = self._functions(self.module_map[target_module])[target_func]
        # The callee runs under the caller's guard/atoms/loops, but any
        # narrowing its early returns introduce ends with the callee.
        saved = (self.module, self.env, self.frame, self.guard, self.atoms)
        self._inline_stack.append(key)
        self.module = self.module_map[target_module]
        self.env = self._env_for(target_module)
        self.frame = _Frame()
        try:
            self._walk_body(funcdef.body)
        finally:
            self.module, self.env, self.frame, self.guard, self.atoms = saved
            self._inline_stack.pop()

    # -- event recording ---------------------------------------------------

    def _next_index(self) -> int:
        self._index += 1
        return self._index - 1

    def _record_comm(self, call: ast.Call, kind: str, extra: tuple) -> None:
        peer_node = call.args[0] if call.args else _kwarg(call, "dst" if kind == "send" else "src")
        tag_node = _kwarg(call, "tag")
        if kind == "send":
            tag_value: int | None = 0
            tag_text = "<default 0>"
        else:
            tag_value, tag_text = None, "<ANY_TAG>"
        if tag_node is not None:
            resolved = self.env.resolve(tag_node)
            tag_value = resolved.value if resolved is not None else None
            tag_text = _normalize(tag_node)
        payload = None
        if kind == "send":
            payload = call.args[1] if len(call.args) > 1 else _kwarg(call, "payload")
        self.events.append(
            ProtoEvent(
                index=self._next_index(),
                kind=kind,
                module=self.module.name,
                line=call.lineno,
                peer=self._resolve_peer(peer_node),
                tag=tag_value,
                tag_text=tag_text,
                guard=self.guard,
                atoms=frozenset(self.atoms + extra),
                loops=self.loops,
                payload=payload,
                payload_env=dict(self.frame.payloads),
            )
        )

    def _record_collective(self, call: ast.Call, name: str) -> None:
        tag_node = _kwarg(call, "tag")
        tag_value = None
        tag_text = f"<default {name}>"
        if tag_node is not None:
            resolved = self.env.resolve(tag_node)
            tag_value = resolved.value if resolved is not None else None
            tag_text = _normalize(tag_node)
        root_node = _kwarg(call, "root")
        root = 0
        if root_node is not None:
            resolved = self.env.resolve(root_node)
            root = resolved.value if resolved is not None else None
        self.events.append(
            ProtoEvent(
                index=self._next_index(),
                kind="collective",
                module=self.module.name,
                line=call.lineno,
                peer=None,
                tag=tag_value,
                tag_text=tag_text,
                guard=self.guard,
                atoms=frozenset(self.atoms),
                loops=self.loops,
                collective=name,
                root=root,
            )
        )

    # -- bindings and symbolic resolution ----------------------------------

    def _record_assign(self, stmt: ast.Assign) -> None:
        if len(stmt.targets) != 1:
            return
        target = stmt.targets[0]
        if isinstance(target, ast.Name):
            self._record_binding(target, stmt.value)
        elif (
            isinstance(target, ast.Tuple)
            and isinstance(stmt.value, ast.Tuple)
            and len(target.elts) == len(stmt.value.elts)
        ):
            for t, v in zip(target.elts, stmt.value.elts):
                if isinstance(t, ast.Name):
                    self._record_binding(t, v)

    def _record_binding(self, target: ast.Name, value: ast.expr) -> None:
        special = self._ctx_attr(value)
        if special is not None:
            self.frame.special[target.id] = special
            return
        peer = self._resolve_peer(value)
        if peer.kind != "unknown":
            self.frame.peers[target.id] = peer
        else:
            self.frame.peers.pop(target.id, None)
        self.frame.payloads[target.id] = value

    @staticmethod
    def _ctx_attr(node: ast.expr) -> str | None:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "ctx"
            and node.attr in ("rank", "nranks")
        ):
            return node.attr
        return None

    def _is_rank(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return self.frame.special.get(node.id) == "rank"
        return self._ctx_attr(node) == "rank"

    def _is_nranks(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return self.frame.special.get(node.id) == "nranks"
        return self._ctx_attr(node) == "nranks"

    def _resolve_peer(self, node: ast.expr | None) -> Peer:
        if node is None:
            return Peer("unknown", text="<missing>")
        text = _normalize(node)
        if isinstance(node, ast.Constant):
            if isinstance(node.value, int) and not isinstance(node.value, bool):
                return Peer("const", node.value, text=text)
            return Peer("unknown", text=text)
        if isinstance(node, ast.Name):
            bound = self.frame.peers.get(node.id)
            if bound is not None:
                return bound
        # (rank ± k) % nranks — the explicit ring form.
        if (
            isinstance(node, ast.BinOp)
            and isinstance(node.op, ast.Mod)
            and self._is_nranks(node.right)
            and isinstance(node.left, ast.BinOp)
            and isinstance(node.left.op, (ast.Add, ast.Sub))
            and self._is_rank(node.left.left)
        ):
            step = self.env.resolve(node.left.right)
            if step is not None:
                delta = step.value if isinstance(node.left.op, ast.Add) else -step.value
                return Peer("axis", delta, axis="ring", text=text)
        # rank ^ mask — the butterfly form.
        if (
            isinstance(node, ast.BinOp)
            and isinstance(node.op, ast.BitXor)
            and self._is_rank(node.left)
        ):
            mask = self.env.resolve(node.right)
            if mask is not None:
                return Peer("xor", mask.value, text=text)
        # decomp.north_neighbor(rank) — the decomposition helpers.
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in AXIS_HELPERS
            and len(node.args) == 1
            and self._is_rank(node.args[0])
        ):
            axis, delta = AXIS_HELPERS[node.func.attr]
            return Peer("axis", delta, axis=axis, text=text)
        resolved = self.env.resolve(node)
        if resolved is not None:
            return Peer("const", resolved.value, text=text)
        return Peer("unknown", text=text)

    def _rank_test(self, test: ast.expr) -> tuple | None:
        """``rank == k`` / ``rank != k`` → (then-guard, else-guard)."""
        if not (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], (ast.Eq, ast.NotEq))
        ):
            return None
        left, right = test.left, test.comparators[0]
        if self._is_rank(left):
            const = self.env.resolve(right)
        elif self._is_rank(right):
            const = self.env.resolve(left)
        else:
            return None
        if const is None:
            return None
        only = RankGuard("only", const.value)
        exc = RankGuard("except", const.value)
        if isinstance(test.ops[0], ast.Eq):
            return (only, exc)
        return (exc, only)


def _normalize(node: ast.expr) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse covers the dialect
        return ast.dump(node)


def _call_name(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _kwarg(call: ast.Call, name: str) -> ast.expr | None:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def extract_protocol(
    modules: list, spec: ProtocolProgram
) -> ProgramProtocol | None:
    """Extract the symbolic protocol of one program (``None`` when the
    module or function is not in the analyzed set)."""
    module_map = {m.name: m for m in modules}
    if spec.module not in module_map:
        return None
    return _Extractor(module_map, spec).extract()


# -- rule checks -----------------------------------------------------------


def _tag_exempt(tag: int | None) -> bool:
    """Tags owned by a reserved range (collectives, reliable transport,
    bench fan-in) are matched by their own layer, not at program level."""
    if tag is None:
        return False
    from repro.machines.tags import protocol_kind

    return protocol_kind(tag) != "app"


def _tag_label(tag: int | None, text: str) -> str:
    if tag is None:
        return text
    from repro.machines.tags import REGISTRY

    name = REGISTRY.name_of(tag)
    return f"tag {tag} ({name})" if name else f"tag {tag}"


def match_events(proto: ProgramProtocol, paths: dict) -> list:
    """Pair sends with receives under peer inversion; unpaired events are
    findings.  Fills ``proto.matches``."""
    findings: list = []

    def unmatched(ev: ProtoEvent, why: str) -> None:
        rule_id = RULE_UNMATCHED_SEND.id if ev.kind == "send" else RULE_UNMATCHED_RECV.id
        findings.append(
            Finding(
                rule_id=rule_id,
                module=ev.module,
                path=paths.get(ev.module, "<memory>"),
                line=ev.line,
                message=f"{ev.kind} on {_tag_label(ev.tag, ev.tag_text)} in "
                f"{proto.func}() {why}",
            )
        )

    groups: dict = {}
    for ev in proto.events:
        if ev.kind == "collective" or _tag_exempt(ev.tag):
            continue
        if ev.tag is None:
            unmatched(ev, "has a tag the analysis cannot resolve to a constant")
            continue
        key = channel_key(ev.kind, ev.peer, ev.guard)
        if key is None:
            unmatched(
                ev,
                f"uses peer {ev.peer.describe()!r} under guard "
                f"{ev.guard.describe()!r}, outside the invertible forms",
            )
            continue
        bucket = groups.setdefault((ev.tag, ev.loops, ev.atoms, key), ([], []))
        bucket[0 if ev.kind == "send" else 1].append(ev)

    for (tag, _loops, _atoms, key), (sends, recvs) in sorted(
        groups.items(), key=lambda kv: (kv[1][0] + kv[1][1])[0].index
    ):
        for send, recv in zip(sends, recvs):
            proto.matches.append((send, recv))
        for ev in sends[len(recvs) :]:
            unmatched(
                ev,
                f"ships {describe_channel(key)} but no receive covers the "
                "inverted channel in the same phase and guards",
            )
        for ev in recvs[len(sends) :]:
            unmatched(
                ev,
                f"expects {describe_channel(key)} but no send produces the "
                "channel in the same phase and guards",
            )
    return findings


def check_deadlock(proto: ProgramProtocol, paths: dict) -> list:
    """Phase-ordered wait-for analysis over the matched protocol."""
    matched_send = {recv.index: send for send, recv in proto.matches}
    blocking = [
        ev
        for ev in proto.events
        if ev.kind == "collective" or (ev.kind == "recv" and not _tag_exempt(ev.tag))
    ]
    edges: dict[int, list] = {}
    by_index = {ev.index: ev for ev in blocking}

    def add_edges(waiter: ProtoEvent, horizon: int, producer_guard, producer_atoms) -> None:
        for other in blocking:
            if other.loops != waiter.loops or other.index >= horizon:
                continue
            if not guards_intersect(other.guard, producer_guard):
                continue
            if not atoms_compatible(other.atoms, producer_atoms):
                continue
            edges.setdefault(waiter.index, []).append(other.index)

    for ev in blocking:
        if ev.kind == "recv":
            send = matched_send.get(ev.index)
            if send is None:
                continue  # already reported as unmatched
            add_edges(ev, send.index, send.guard, ev.atoms | send.atoms)
        else:
            add_edges(ev, ev.index, ev.guard, ev.atoms)

    # Cycle detection (iterative DFS, deterministic order).
    findings: list = []
    color: dict[int, int] = {}
    stack_path: list[int] = []

    def visit(start: int) -> list | None:
        stack = [(start, iter(edges.get(start, ())))]
        color[start] = 1
        stack_path.append(start)
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if color.get(nxt, 0) == 1:
                    return stack_path[stack_path.index(nxt) :] + [nxt]
                if color.get(nxt, 0) == 0:
                    color[nxt] = 1
                    stack_path.append(nxt)
                    stack.append((nxt, iter(edges.get(nxt, ()))))
                    advanced = True
                    break
            if not advanced:
                color[node] = 2
                stack_path.pop()
                stack.pop()
        return None

    for ev in blocking:
        if color.get(ev.index, 0) == 0:
            cycle = visit(ev.index)
            if cycle is not None:
                sites = [by_index[i] for i in cycle[:-1]]
                chain = " -> ".join(s.site() for s in sites + [sites[0]])
                first = sites[0]
                findings.append(
                    Finding(
                        rule_id=RULE_DEADLOCK_CYCLE.id,
                        module=first.module,
                        path=paths.get(first.module, "<memory>"),
                        line=first.line,
                        message=f"symbolic wait-for cycle in {proto.func}(): "
                        f"{chain} (a receive is posted before its matched "
                        "send has been issued by the producing ranks)",
                    )
                )
                break
    return findings


def check_collectives(proto: ProgramProtocol, paths: dict) -> list:
    findings: list = []
    for ev in proto.events:
        if ev.kind != "collective" or ev.guard.kind == "all":
            continue
        findings.append(
            Finding(
                rule_id=RULE_COLLECTIVE_DIVERGENCE.id,
                module=ev.module,
                path=paths.get(ev.module, "<memory>"),
                line=ev.line,
                message=f"collective {ev.collective}() in {proto.func}() runs "
                f"only on {ev.guard.describe()}; participation must be "
                "rank-uniform",
            )
        )
    return findings


def check_protocol(
    modules: list, programs: tuple | None = None
) -> tuple[list, list]:
    """Run the whole-program protocol rules over every registered program
    present in ``modules``; returns ``(findings, protocols)``."""
    specs = DEFAULT_PROTOCOL_PROGRAMS if programs is None else programs
    paths = {m.name: m.path for m in modules}
    module_map = {m.name: m for m in modules}
    findings: list = []
    protocols: list = []
    for spec in specs:
        if spec.module not in module_map:
            continue
        proto = _Extractor(module_map, spec).extract()
        if proto is None:
            continue
        protocols.append(proto)
        findings.extend(match_events(proto, paths))
        findings.extend(check_deadlock(proto, paths))
        findings.extend(check_collectives(proto, paths))
        if spec.phase is not None:
            findings.extend(check_guard_depths(proto, paths))
    return findings, protocols


# -- concrete channel expansion --------------------------------------------


def concrete_channels(
    proto: ProgramProtocol,
    nranks: int,
    env: dict,
    grid: tuple | None = None,
) -> set:
    """Expand the verified symbolic protocol to concrete
    ``{(src, dst, tag)}`` channels for one configuration.

    ``env`` decides which guard atoms hold (see
    :func:`repro.analysis.peers.eval_atoms`); ``grid`` is the
    ``(prows, pcols)`` process grid for block programs — without it every
    axis is treated as the rank ring, which is exact for stripe
    decompositions.  Collectives on registry-range tags are the
    collective layer's own traffic and are excluded (mirroring the
    user-tag filter of
    :func:`repro.machines.causality.observed_channels`); collectives on
    explicit user tags contribute their known shape (``gather``/
    ``scatter`` stars) or a conservative all-pairs superset.
    """
    channels: set = set()
    for send, _recv in proto.matches:
        if not eval_atoms(send.atoms, env):
            continue
        key = channel_key("send", send.peer, send.guard)
        if key is not None:
            channels.update((s, d, send.tag) for s, d in _expand_key(key, nranks, grid))
    for ev in proto.events:
        if ev.kind != "collective" or ev.tag is None or _tag_exempt(ev.tag):
            continue
        if not eval_atoms(ev.atoms, env):
            continue
        root = ev.root if ev.root is not None else 0
        if ev.collective == "gather":
            pairs = {(r, root) for r in range(nranks) if r != root}
        elif ev.collective == "scatter":
            pairs = {(root, r) for r in range(nranks) if r != root}
        else:
            pairs = {(a, b) for a in range(nranks) for b in range(nranks) if a != b}
        channels.update((s, d, ev.tag) for s, d in pairs)
    return channels


def _expand_key(key: tuple, nranks: int, grid: tuple | None) -> set:
    shape, *rest = key
    if shape == "shift":
        axis, delta = rest
        if grid is None or axis == "ring":
            return {(r, (r + delta) % nranks) for r in range(nranks)}
        prows, pcols = grid
        pairs = set()
        for r in range(nranks):
            row, col = divmod(r, pcols)
            if axis == "row":
                dst = ((row + delta) % prows) * pcols + col
            else:
                dst = row * pcols + (col + delta) % pcols
            pairs.add((r, dst))
        return pairs
    if shape == "xor":
        mask = rest[0]
        return {(r, r ^ mask) for r in range(nranks) if r ^ mask < nranks}
    if shape == "star-out":
        root, srcs = rest
        members = _fan_members(root, srcs, nranks)
        return {(root, r) for r in members}
    if shape == "star-in":
        root, srcs = rest
        members = _fan_members(root, srcs, nranks)
        return {(r, root) for r in members}
    if shape == "pair":
        src, dst = rest
        if src < nranks and dst < nranks:
            return {(src, dst)}
    return set()


def _fan_members(root: int, srcs: object, nranks: int) -> set:
    if srcs == "except":
        return {r for r in range(nranks) if r != root}
    lo = srcs[1] if isinstance(srcs, tuple) else 0  # ("range", lo)
    return set(range(lo, nranks))
