"""Static communication summaries and the communication rule family.

Extraction walks every function body for ``ctx.send``/``ctx.recv`` and
collective calls (any call whose receiver or first argument is the
conventional ``ctx`` rank-context parameter) and records, per call site:
the peer expression (source text), the tag — resolved to an integer and
its provenance where possible, kept as text otherwise — wildcard
``ANY_SOURCE``/``ANY_TAG`` usage, and ``timeout_s`` presence.  The
summaries are a queryable artifact in their own right (``python -m repro
lint --comm-summary``) and the substrate for four checks:

``COMM-TAG-COLLISION``
    A tag value minted (written as a literal) in two different modules,
    or minted locally while the central registry
    (:mod:`repro.machines.tags`) already owns it — the halo-exchange
    failure mode this linter exists for.
``COMM-TAG-ORPHAN``
    A resolvable tag that is sent but never received (or received but
    never sent) across the analyzed module set: a dead channel or a typo
    that will surface as a deadlock at some processor count.
``COMM-WILDCARD-RECV``
    A receive posted with ``ANY_SOURCE``/``ANY_TAG`` (explicitly or by
    omission).  These are the *static race candidates*: every
    nondeterminism hazard the dynamic Netzer-Miller detector can ever
    report on a traced run matches one of these sites, so the static set
    is a superset of the dynamic findings by construction
    (cross-checked in ``tests/test_analysis_repo.py``).
``COMM-RECV-NO-TIMEOUT``
    A receive without ``timeout_s`` in a module declared reachable under
    ``reliable=False`` fault configs (default: the reliable-transport
    module itself), where a dropped message otherwise becomes a silent
    deadlock.
``COMM-TAG-LITERAL``
    A raw integer literal as a ``tag=`` argument at a call site; tags
    must be named constants allocated through the central registry.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.rules import Finding, rule
from repro.analysis.sources import ConstEnv, SourceModule

__all__ = [
    "COLLECTIVE_FUNCS",
    "CommSite",
    "CommSummary",
    "extract_comm_sites",
    "summarize_comm",
    "check_comm",
]

RULE_TAG_COLLISION = rule(
    "COMM-TAG-COLLISION",
    "error",
    "message tag value owned by more than one module",
    "allocate the tag in repro.machines.tags instead of hand-numbering it",
)
RULE_TAG_ORPHAN = rule(
    "COMM-TAG-ORPHAN",
    "error",
    "message tag sent but never received, or received but never sent",
    "pair every send tag with a matching recv (or delete the dead channel)",
)
RULE_WILDCARD_RECV = rule(
    "COMM-WILDCARD-RECV",
    "warning",
    "receive posted with ANY_SOURCE/ANY_TAG (static race candidate)",
    "post the exact (source, tag) pair; wildcard matching is the only "
    "engine-level nondeterminism surface",
)
RULE_RECV_NO_TIMEOUT = rule(
    "COMM-RECV-NO-TIMEOUT",
    "error",
    "recv reachable under reliable=False fault configs lacks timeout_s",
    "pass timeout_s= so a dropped message raises RecvTimeoutError instead "
    "of deadlocking the run",
)
RULE_TAG_LITERAL = rule(
    "COMM-TAG-LITERAL",
    "error",
    "raw integer literal used as a message tag at a call site",
    "name the tag and allocate it through repro.machines.tags",
)

#: Collective generator subroutines from :mod:`repro.machines.api`
#: (invoked ``yield from f(ctx, ...)``), plus the reliable-transport
#: helpers which wrap send/recv pairs.
COLLECTIVE_FUNCS = frozenset(
    {
        "bcast",
        "reduce",
        "allreduce",
        "allreduce_rabenseifner",
        "broadcast_tree",
        "get_allreduce",
        "gssum_naive",
        "gather",
        "allgather",
        "scatter",
        "alltoall",
        "barrier",
        "sendrecv",
        "exercise_collectives",
        "reliable_send",
        "reliable_recv",
        "drain",
    }
)

_WILDCARD_NAMES = {"ANY_SOURCE", "ANY_TAG"}


@dataclass(frozen=True)
class CommSite:
    """One static communication call site."""

    module: str
    func: str  # enclosing function name ("<module>" at top level)
    kind: str  # "send" | "recv" | "collective"
    line: int
    peer: str  # source text of dst/src expression ("?" for wildcards)
    tag_text: str  # source text of the tag expression
    tag_value: int | None  # resolved integer, None when dynamic/wildcard
    tag_minted: bool  # value derives only from literals in this module
    tag_is_literal: bool  # tag written as a bare int literal at the site
    wildcard_src: bool = False
    wildcard_tag: bool = False
    has_timeout: bool = False
    collective: str | None = None


@dataclass
class CommSummary:
    """Per-module static communication summary."""

    module: str
    sites: list[CommSite]

    @property
    def sends(self) -> list[CommSite]:
        return [s for s in self.sites if s.kind == "send"]

    @property
    def recvs(self) -> list[CommSite]:
        return [s for s in self.sites if s.kind == "recv"]

    @property
    def collectives(self) -> list[CommSite]:
        return [s for s in self.sites if s.kind == "collective"]

    @property
    def wildcard_recvs(self) -> list[CommSite]:
        return [s for s in self.recvs if s.wildcard_src or s.wildcard_tag]

    def tag_values(self, kind: str | None = None) -> set[int]:
        return {
            s.tag_value
            for s in self.sites
            if s.tag_value is not None and (kind is None or s.kind == kind)
        }


def _expr_text(module: SourceModule, node: ast.expr | None) -> str:
    if node is None:
        return ""
    try:
        return ast.get_source_segment(module.source, node) or ast.dump(node)
    except Exception:
        return ast.dump(node)


def _kwarg(call: ast.Call, name: str) -> ast.expr | None:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def _is_wildcard(env: ConstEnv, node: ast.expr | None) -> bool:
    """An omitted argument, a name ending in ANY_SOURCE/ANY_TAG, or an
    expression resolving to -1 posts a wildcard."""
    if node is None:
        return True
    if isinstance(node, ast.Name) and node.id in _WILDCARD_NAMES:
        return True
    if isinstance(node, ast.Attribute) and node.attr in _WILDCARD_NAMES:
        return True
    resolved = env.resolve(node)
    return resolved is not None and resolved.value < 0


class _CommVisitor(ast.NodeVisitor):
    def __init__(self, module: SourceModule, env: ConstEnv) -> None:
        self.module = module
        self.env = env
        self.sites: list[CommSite] = []
        self._func_stack: list[str] = []

    # Track the enclosing function name for site attribution.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._func_stack.append(node.name)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _enclosing(self) -> str:
        return self._func_stack[-1] if self._func_stack else "<module>"

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "ctx"
            and func.attr in ("send", "recv")
        ):
            if func.attr == "send":
                self._record_send(node)
            else:
                self._record_recv(node)
        else:
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if (
                name in COLLECTIVE_FUNCS
                and node.args
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id == "ctx"
            ):
                self._record_collective(node, name)
        self.generic_visit(node)

    def _tag_fields(self, tag_node: ast.expr | None) -> tuple[str, int | None, bool, bool]:
        if tag_node is None:
            # Engine default: send tag is 0; recv default is handled by
            # the wildcard path before this is called.
            return ("<default 0>", 0, False, False)
        resolved = self.env.resolve(tag_node)
        is_literal = isinstance(tag_node, ast.Constant)
        if resolved is None:
            return (_expr_text(self.module, tag_node), None, False, is_literal)
        return (
            _expr_text(self.module, tag_node),
            resolved.value,
            resolved.minted,
            is_literal,
        )

    def _record_send(self, node: ast.Call) -> None:
        dst = node.args[0] if node.args else _kwarg(node, "dst")
        tag_text, tag_value, minted, literal = self._tag_fields(_kwarg(node, "tag"))
        self.sites.append(
            CommSite(
                module=self.module.name,
                func=self._enclosing(),
                kind="send",
                line=node.lineno,
                peer=_expr_text(self.module, dst),
                tag_text=tag_text,
                tag_value=tag_value,
                tag_minted=minted,
                tag_is_literal=literal,
            )
        )

    def _record_recv(self, node: ast.Call) -> None:
        src = node.args[0] if node.args else _kwarg(node, "src")
        tag_node = _kwarg(node, "tag")
        wildcard_src = _is_wildcard(self.env, src)
        wildcard_tag = _is_wildcard(self.env, tag_node)
        if wildcard_tag:
            tag_text, tag_value, minted, literal = ("<ANY_TAG>", None, False, False)
        else:
            tag_text, tag_value, minted, literal = self._tag_fields(tag_node)
        timeout = _kwarg(node, "timeout_s")
        has_timeout = timeout is not None and not (
            isinstance(timeout, ast.Constant) and timeout.value is None
        )
        self.sites.append(
            CommSite(
                module=self.module.name,
                func=self._enclosing(),
                kind="recv",
                line=node.lineno,
                peer="?" if wildcard_src else _expr_text(self.module, src),
                tag_text=tag_text,
                tag_value=tag_value,
                tag_minted=minted,
                tag_is_literal=literal,
                wildcard_src=wildcard_src,
                wildcard_tag=wildcard_tag,
                has_timeout=has_timeout,
            )
        )

    def _record_collective(self, node: ast.Call, name: str) -> None:
        tag_node = _kwarg(node, "tag")
        tag_text, tag_value, minted, literal = self._tag_fields(tag_node)
        if tag_node is None:
            # Collectives default to their registry tag, not to 0.
            tag_text, tag_value, minted, literal = (f"<default {name}>", None, False, False)
        self.sites.append(
            CommSite(
                module=self.module.name,
                func=self._enclosing(),
                kind="collective",
                line=node.lineno,
                peer="<all>",
                tag_text=tag_text,
                tag_value=tag_value,
                tag_minted=minted,
                tag_is_literal=literal,
                collective=name,
            )
        )


def extract_comm_sites(module: SourceModule, env: ConstEnv | None = None) -> list[CommSite]:
    """All communication call sites in one module, in source order."""
    visitor = _CommVisitor(module, env or ConstEnv(module))
    visitor.visit(module.tree)
    return visitor.sites


def summarize_comm(modules: list[SourceModule]) -> list[CommSummary]:
    """Per-module communication summaries (modules with no sites omitted)."""
    summaries = []
    for module in modules:
        sites = extract_comm_sites(module)
        if sites:
            summaries.append(CommSummary(module=module.name, sites=sites))
    return summaries


def _registry_owner(value: int) -> str | None:
    from repro.machines.tags import REGISTRY

    return REGISTRY.name_of(value)


def check_comm(
    modules: list[SourceModule],
    *,
    raw_fault_modules: tuple[str, ...] = (),
    check_registry: bool = True,
) -> tuple[list[Finding], list[CommSummary]]:
    """Run the communication rule family; returns (findings, summaries)."""
    summaries = summarize_comm(modules)
    paths = {m.name: m.path for m in modules}
    findings: list[Finding] = []

    # -- per-site rules ----------------------------------------------------
    for summary in summaries:
        for site in summary.sites:
            if site.tag_is_literal and site.kind in ("send", "recv"):
                findings.append(
                    Finding(
                        rule_id=RULE_TAG_LITERAL.id,
                        module=site.module,
                        path=paths[site.module],
                        line=site.line,
                        message=f"{site.kind} in {site.func}() uses raw tag "
                        f"literal {site.tag_text}",
                    )
                )
            if site.kind == "recv" and (site.wildcard_src or site.wildcard_tag):
                what = []
                if site.wildcard_src:
                    what.append("ANY_SOURCE")
                if site.wildcard_tag:
                    what.append("ANY_TAG")
                findings.append(
                    Finding(
                        rule_id=RULE_WILDCARD_RECV.id,
                        module=site.module,
                        path=paths[site.module],
                        line=site.line,
                        message=f"recv in {site.func}() posts "
                        f"{'/'.join(what)} (static race candidate)",
                    )
                )
            if (
                site.kind == "recv"
                and not site.has_timeout
                and any(site.module.startswith(prefix) for prefix in raw_fault_modules)
            ):
                findings.append(
                    Finding(
                        rule_id=RULE_RECV_NO_TIMEOUT.id,
                        module=site.module,
                        path=paths[site.module],
                        line=site.line,
                        message=f"recv in {site.func}() is reachable under "
                        "reliable=False but has no timeout_s",
                    )
                )

    # -- cross-module tag ownership ---------------------------------------
    minted_by: dict[int, dict[str, CommSite]] = {}
    for summary in summaries:
        for site in summary.sites:
            if site.tag_value is None or not site.tag_minted:
                continue
            owners = minted_by.setdefault(site.tag_value, {})
            owners.setdefault(site.module, site)
    for value, owners in sorted(minted_by.items()):
        names = sorted(owners)
        registry_owner = _registry_owner(value) if check_registry else None
        if len(names) > 1:
            for name in names:
                site = owners[name]
                others = ", ".join(n for n in names if n != name)
                findings.append(
                    Finding(
                        rule_id=RULE_TAG_COLLISION.id,
                        module=name,
                        path=paths[name],
                        line=site.line,
                        message=f"tag {value} is hand-numbered here and also "
                        f"in {others}",
                    )
                )
        elif registry_owner is not None:
            name = names[0]
            site = owners[name]
            findings.append(
                Finding(
                    rule_id=RULE_TAG_COLLISION.id,
                    module=name,
                    path=paths[name],
                    line=site.line,
                    message=f"tag {value} is hand-numbered here but the "
                    f"central registry already owns it as {registry_owner!r}",
                )
            )

    # -- orphan pairing over the analyzed set ------------------------------
    sent: dict[int, CommSite] = {}
    received: dict[int, CommSite] = {}
    wildcard_tag_modules = {
        summary.module for summary in summaries if any(s.wildcard_tag for s in summary.recvs)
    }
    for summary in summaries:
        for site in summary.sites:
            if site.tag_value is None or site.kind == "collective":
                continue
            table = sent if site.kind == "send" else received
            table.setdefault(site.tag_value, site)
    for value, site in sorted(sent.items()):
        if value in received:
            continue
        # A wildcard-tag recv in the same module can absorb any tag.
        if site.module in wildcard_tag_modules:
            continue
        findings.append(
            Finding(
                rule_id=RULE_TAG_ORPHAN.id,
                module=site.module,
                path=paths[site.module],
                line=site.line,
                message=f"tag {value} ({site.tag_text}) is sent in "
                f"{site.func}() but never received anywhere",
            )
        )
    for value, site in sorted(received.items()):
        if value in sent:
            continue
        findings.append(
            Finding(
                rule_id=RULE_TAG_ORPHAN.id,
                module=site.module,
                path=paths[site.module],
                line=site.line,
                message=f"tag {value} ({site.tag_text}) is received in "
                f"{site.func}() but never sent anywhere",
            )
        )

    return findings, summaries
