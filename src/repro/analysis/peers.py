"""Symbolic peer expressions, rank guards, and static condition evaluation.

The protocol verifier (:mod:`repro.analysis.protocol`) reasons about a
rank program *for every processor count at once*, so peers and guards are
kept symbolic in ``rank``/``nranks`` rather than enumerated:

* :class:`Peer` — the peer-expression algebra.  The SPMD dialect writes
  peers in a handful of closed forms: ring arithmetic ``(rank ± k) %
  nranks``, butterfly partners ``rank ^ mask``, the decomposition
  neighbor helpers (``north_neighbor``/``south_neighbor`` along the
  ``"row"`` axis, ``east_neighbor``/``west_neighbor`` along ``"col"``),
  manager/worker constants, and fan loops over ``range(1, nranks)``.
  Matching a send against a receive only needs *inversion* — a send
  shifting ``+d`` along an axis pairs with a receive shifting ``-d`` —
  so the algebra never needs the concrete grid geometry.
* :class:`RankGuard` — the rank-dependent part of the path condition:
  every rank (``all``), exactly rank ``k`` (``only``), or everyone else
  (``except``), from ``if rank == k`` / ``if rank != k`` tests.
* :func:`channel_key` — the canonical descriptor of the symbolic channel
  set ``{(src, dst)}`` a site touches, shared between the send and the
  receive direction so structural matching is a dictionary lookup.
* :func:`eval_static` — a tiny closed-world expression evaluator used to
  decide which guard atoms hold under one concrete configuration
  (kernel, bank, nranks > 1, ...), both for the plan/guard contract and
  for expanding symbolic channels to concrete ``(src, dst, tag)`` sets.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

__all__ = [
    "Peer",
    "RankGuard",
    "AXIS_HELPERS",
    "channel_key",
    "describe_channel",
    "guards_intersect",
    "intersect_guards",
    "atoms_compatible",
    "eval_static",
    "eval_atoms",
]

#: Decomposition neighbor-helper methods and the (axis, delta) shift each
#: one performs in rank space.  Both decompositions wrap periodically, so
#: inversion is simply delta negation on the same axis; the verifier never
#: needs to know whether ``"row"`` means a stripe ring or a grid column.
AXIS_HELPERS: dict[str, tuple[str, int]] = {
    "north_neighbor": ("row", -1),
    "south_neighbor": ("row", +1),
    "west_neighbor": ("col", -1),
    "east_neighbor": ("col", +1),
}


@dataclass(frozen=True)
class Peer:
    """One symbolic peer expression.

    ``kind`` selects the algebra case:

    ``"const"``
        A fixed rank (``value``) — the manager/worker pattern.
    ``"axis"``
        A periodic shift of ``value`` steps along ``axis`` (``"ring"``
        for explicit ``(rank ± k) % nranks`` arithmetic, ``"row"`` /
        ``"col"`` for the decomposition helpers).
    ``"xor"``
        The butterfly partner ``rank ^ value`` (self-inverse).
    ``"fanrange"``
        A fan loop variable iterating ``range(value, nranks)``.
    ``"unknown"``
        Anything the algebra cannot represent; ``text`` carries the
        source for diagnostics.
    """

    kind: str
    value: int = 0
    axis: str = ""
    text: str = ""

    def describe(self) -> str:
        if self.kind == "const":
            return f"rank {self.value}"
        if self.kind == "axis":
            sign = "+" if self.value >= 0 else ""
            return f"{self.axis}{sign}{self.value}"
        if self.kind == "xor":
            return f"rank^{self.value}"
        if self.kind == "fanrange":
            return f"range({self.value}, nranks)"
        return self.text or "?"


@dataclass(frozen=True)
class RankGuard:
    """The rank-dependent guard a site executes under."""

    kind: str = "all"  # "all" | "only" | "except" | "none"
    value: int = 0

    def describe(self) -> str:
        if self.kind == "all":
            return "all ranks"
        if self.kind == "only":
            return f"rank {self.value}"
        if self.kind == "except":
            return f"ranks != {self.value}"
        return "no rank"


def intersect_guards(a: RankGuard, b: RankGuard) -> RankGuard:
    """Intersection of two rank guards (``"none"`` when provably empty).

    ``except ∩ except`` over different values is kept as the first
    operand: it is still nonempty for every ``nranks >= 3`` and the
    verifier only needs emptiness/nonemptiness plus the exact forms the
    dialect writes (nested guards over the *same* manager rank).
    """
    if a.kind == "none" or b.kind == "none":
        return RankGuard("none")
    if a.kind == "all":
        return b
    if b.kind == "all":
        return a
    if a.kind == "only" and b.kind == "only":
        return a if a.value == b.value else RankGuard("none")
    if a.kind == "only":
        return a if a.value != b.value else RankGuard("none")
    if b.kind == "only":
        return b if b.value != a.value else RankGuard("none")
    return a


def guards_intersect(a: RankGuard, b: RankGuard) -> bool:
    """Whether two guards can both hold for some rank (``nranks`` large)."""
    return intersect_guards(a, b).kind != "none"


def atoms_compatible(
    a: frozenset[tuple[str, bool]], b: frozenset[tuple[str, bool]]
) -> bool:
    """Whether two guard-atom sets can hold simultaneously (no atom is
    required with both polarities)."""
    truth: dict[str, bool] = {}
    for text, polarity in a | b:
        if truth.setdefault(text, polarity) != polarity:
            return False
    return True


def channel_key(kind: str, peer: Peer, guard: RankGuard) -> tuple | None:
    """Canonical descriptor of the symbolic channel set ``{(src, dst)}``.

    A send and a receive describe the *same* channel set exactly when
    their keys are equal — inversion is baked in (a receive from an axis
    shift ``+d`` normalizes to the ``-d`` send direction), so matching
    reduces to key equality.  ``None`` means the (peer, guard) pair is
    outside the canonical forms and cannot be verified structurally.
    """
    if peer.kind == "axis":
        if guard.kind != "all":
            return None
        delta = peer.value if kind == "send" else -peer.value
        return ("shift", peer.axis, delta)
    if peer.kind == "xor":
        if guard.kind != "all":
            return None
        return ("xor", peer.value)
    if kind == "send":
        if peer.kind == "fanrange" and guard.kind == "only":
            return ("star-out", guard.value, _fan_srcs(guard.value, peer.value))
        if peer.kind == "const" and guard.kind == "except" and guard.value == peer.value:
            return ("star-in", peer.value, "except")
        if peer.kind == "const" and guard.kind == "only":
            return ("pair", guard.value, peer.value)
    else:
        if peer.kind == "fanrange" and guard.kind == "only":
            return ("star-in", guard.value, _fan_srcs(guard.value, peer.value))
        if peer.kind == "const" and guard.kind == "except" and guard.value == peer.value:
            return ("star-out", peer.value, "except")
        if peer.kind == "const" and guard.kind == "only":
            return ("pair", peer.value, guard.value)
    return None


def _fan_srcs(root: int, lo: int) -> object:
    """Normalize a fan set ``range(lo, nranks)`` against ``all != root``."""
    if root == 0 and lo == 1:
        return "except"
    return ("range", lo)


def describe_channel(key: tuple) -> str:
    """Human-readable form of a channel descriptor for findings."""
    shape, *rest = key
    if shape == "shift":
        axis, delta = rest
        sign = "+" if delta >= 0 else ""
        return f"rank -> rank{sign}{delta} along {axis}"
    if shape == "xor":
        return f"rank <-> rank^{rest[0]}"
    if shape == "star-out":
        return f"rank {rest[0]} -> every other rank"
    if shape == "star-in":
        return f"every other rank -> rank {rest[0]}"
    if shape == "pair":
        return f"rank {rest[0]} -> rank {rest[1]}"
    return repr(key)


# -- closed-world static evaluation ----------------------------------------


class _Opaque:
    """Sentinel for names the configuration does not pin down."""


OPAQUE = _Opaque()


def eval_static(node: ast.expr | str, env: dict[str, object]) -> object:
    """Evaluate a side-effect-free expression under a closed environment.

    ``env`` maps names (and dotted attribute paths like
    ``"decomp.pcols"``) to Python values.  Returns :data:`OPAQUE` when
    the expression touches anything outside the environment — callers
    treat opaque conditions as "may hold" so the analysis stays sound.
    Supports the condition/arithmetic subset the SPMD dialect writes:
    comparisons, boolean operators, ``not``, ``+ - * // %``, unary minus,
    and ``max``/``min`` calls.
    """
    if isinstance(node, str):
        try:
            node = ast.parse(node, mode="eval").body
        except SyntaxError:
            return OPAQUE
    return _eval(node, env)


def _eval(node: ast.expr, env: dict[str, object]) -> object:
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, ast.Name):
        return env.get(node.id, OPAQUE)
    if isinstance(node, ast.Attribute):
        return env.get(_dotted(node), OPAQUE)
    if isinstance(node, ast.UnaryOp):
        operand = _eval(node.operand, env)
        if operand is OPAQUE:
            return OPAQUE
        if isinstance(node.op, ast.Not):
            return not operand
        if isinstance(node.op, ast.USub):
            return -operand  # type: ignore[operator]
        return OPAQUE
    if isinstance(node, ast.BoolOp):
        values = [_eval(v, env) for v in node.values]
        if any(v is OPAQUE for v in values):
            return OPAQUE
        if isinstance(node.op, ast.And):
            result: object = True
            for v in values:
                result = v
                if not v:
                    return v
            return result
        for v in values:
            if v:
                return v
        return values[-1]
    if isinstance(node, ast.BinOp):
        left, right = _eval(node.left, env), _eval(node.right, env)
        if left is OPAQUE or right is OPAQUE:
            return OPAQUE
        try:
            if isinstance(node.op, ast.Add):
                return left + right  # type: ignore[operator]
            if isinstance(node.op, ast.Sub):
                return left - right  # type: ignore[operator]
            if isinstance(node.op, ast.Mult):
                return left * right  # type: ignore[operator]
            if isinstance(node.op, ast.FloorDiv):
                return left // right  # type: ignore[operator]
            if isinstance(node.op, ast.Mod):
                return left % right  # type: ignore[operator]
            if isinstance(node.op, ast.Pow):
                return left**right  # type: ignore[operator]
        except Exception:
            return OPAQUE
        return OPAQUE
    if isinstance(node, ast.Compare):
        left = _eval(node.left, env)
        if left is OPAQUE:
            return OPAQUE
        for op, comparator in zip(node.ops, node.comparators):
            right = _eval(comparator, env)
            if right is OPAQUE:
                return OPAQUE
            try:
                if isinstance(op, ast.Eq):
                    ok = left == right
                elif isinstance(op, ast.NotEq):
                    ok = left != right
                elif isinstance(op, ast.Gt):
                    ok = left > right  # type: ignore[operator]
                elif isinstance(op, ast.GtE):
                    ok = left >= right  # type: ignore[operator]
                elif isinstance(op, ast.Lt):
                    ok = left < right  # type: ignore[operator]
                elif isinstance(op, ast.LtE):
                    ok = left <= right  # type: ignore[operator]
                elif isinstance(op, ast.Is):
                    ok = left is right
                elif isinstance(op, ast.IsNot):
                    ok = left is not right
                else:
                    return OPAQUE
            except Exception:
                return OPAQUE
            if not ok:
                return False
            left = right
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("max", "min") and not node.keywords:
            args = [_eval(a, env) for a in node.args]
            if any(a is OPAQUE for a in args):
                return OPAQUE
            return (max if node.func.id == "max" else min)(args)  # type: ignore[arg-type]
        return OPAQUE
    return OPAQUE


def _dotted(node: ast.Attribute) -> str:
    parts = [node.attr]
    cursor: ast.expr = node.value
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if isinstance(cursor, ast.Name):
        parts.append(cursor.id)
    else:
        parts.append("?")
    return ".".join(reversed(parts))


def eval_atoms(atoms: frozenset[tuple[str, bool]], env: dict[str, object]) -> bool:
    """Whether a site's guard atoms can all hold under ``env``.

    Atoms the environment cannot decide are treated as satisfiable, so a
    site is only ruled *inactive* when an atom provably contradicts the
    configuration.
    """
    for text, polarity in atoms:
        value = eval_static(text, env)
        if value is OPAQUE:
            continue
        if bool(value) != polarity:
            return False
    return True
