"""Particle initial conditions for the N-body and PIC studies.

Appendix B simulates interacting galaxies (Barnes-Hut N-body) and plasma
(Particle-In-Cell).  These generators produce the corresponding initial
conditions:

* :func:`uniform_cube` / :func:`uniform_disk` — uniform density, the regime
  where particle-mesh methods shine (per Appendix B's discussion).
* :func:`plummer_sphere` — the standard centrally concentrated stellar
  model, giving the density contrast where tree codes are favoured.
* :func:`two_galaxies` — a pair of Plummer spheres on an encounter orbit,
  matching the "interacting galaxies" problem in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ParticleSet", "uniform_cube", "uniform_disk", "plummer_sphere", "two_galaxies"]


@dataclass
class ParticleSet:
    """Positions, velocities, and masses of an N-particle system.

    Attributes
    ----------
    positions:
        ``(n, dim)`` float array.
    velocities:
        ``(n, dim)`` float array.
    masses:
        ``(n,)`` float array.
    """

    positions: np.ndarray
    velocities: np.ndarray
    masses: np.ndarray

    def __post_init__(self) -> None:
        self.positions = np.ascontiguousarray(self.positions, dtype=np.float64)
        self.velocities = np.ascontiguousarray(self.velocities, dtype=np.float64)
        self.masses = np.ascontiguousarray(self.masses, dtype=np.float64)
        if self.positions.ndim != 2:
            raise ConfigurationError("positions must be an (n, dim) array")
        if self.velocities.shape != self.positions.shape:
            raise ConfigurationError(
                f"velocities shape {self.velocities.shape} does not match "
                f"positions shape {self.positions.shape}"
            )
        if self.masses.shape != (self.positions.shape[0],):
            raise ConfigurationError(
                f"masses shape {self.masses.shape} does not match particle count "
                f"{self.positions.shape[0]}"
            )

    @property
    def n(self) -> int:
        """Number of particles."""
        return self.positions.shape[0]

    @property
    def dim(self) -> int:
        """Spatial dimensionality (2 or 3)."""
        return self.positions.shape[1]

    @property
    def total_mass(self) -> float:
        """Sum of all particle masses."""
        return float(self.masses.sum())

    def center_of_mass(self) -> np.ndarray:
        """Mass-weighted mean position."""
        return (self.masses[:, None] * self.positions).sum(axis=0) / self.total_mass

    def momentum(self) -> np.ndarray:
        """Total linear momentum (conserved by symmetric force laws)."""
        return (self.masses[:, None] * self.velocities).sum(axis=0)

    def kinetic_energy(self) -> float:
        """Total kinetic energy ``sum(m v^2 / 2)``."""
        return float(0.5 * (self.masses * (self.velocities**2).sum(axis=1)).sum())

    def subset(self, index: np.ndarray) -> "ParticleSet":
        """Return a new :class:`ParticleSet` containing the indexed particles."""
        return ParticleSet(
            positions=self.positions[index].copy(),
            velocities=self.velocities[index].copy(),
            masses=self.masses[index].copy(),
        )

    def copy(self) -> "ParticleSet":
        """Deep copy."""
        return ParticleSet(
            self.positions.copy(), self.velocities.copy(), self.masses.copy()
        )


def _check_n(n: int) -> None:
    if n < 1:
        raise ConfigurationError(f"particle count must be >= 1, got {n}")


def uniform_cube(
    n: int, *, dim: int = 3, extent: float = 1.0, thermal_speed: float = 0.0, seed: int = 0
) -> ParticleSet:
    """Uniformly distributed unit-mass particles in ``[0, extent)^dim``.

    ``thermal_speed`` draws Maxwellian velocities; zero gives a cold start.
    """
    _check_n(n)
    if dim not in (2, 3):
        raise ConfigurationError(f"dim must be 2 or 3, got {dim}")
    rng = np.random.default_rng(seed)
    pos = rng.random((n, dim)) * extent
    vel = (
        rng.standard_normal((n, dim)) * thermal_speed
        if thermal_speed > 0
        else np.zeros((n, dim))
    )
    return ParticleSet(pos, vel, np.full(n, 1.0 / n))


def uniform_disk(n: int, *, radius: float = 1.0, seed: int = 0) -> ParticleSet:
    """Uniform-density 2-D disk of unit total mass centred at the origin."""
    _check_n(n)
    rng = np.random.default_rng(seed)
    r = radius * np.sqrt(rng.random(n))
    theta = rng.random(n) * 2 * np.pi
    pos = np.column_stack([r * np.cos(theta), r * np.sin(theta)])
    return ParticleSet(pos, np.zeros((n, 2)), np.full(n, 1.0 / n))


def plummer_sphere(
    n: int,
    *,
    dim: int = 3,
    scale_radius: float = 1.0,
    total_mass: float = 1.0,
    virial: bool = True,
    max_radius_factor: float = 10.0,
    seed: int = 0,
) -> ParticleSet:
    """Plummer-model stellar cluster (Aarseth, Henon & Wielen sampling).

    The cumulative-mass inversion ``r = a (m^{-2/3} - 1)^{-1/2}`` samples the
    density profile exactly; velocities are drawn from the isotropic
    distribution function by von Neumann rejection when ``virial`` is set,
    giving a cluster in dynamical equilibrium.
    """
    _check_n(n)
    if dim not in (2, 3):
        raise ConfigurationError(f"dim must be 2 or 3, got {dim}")
    rng = np.random.default_rng(seed)

    m_frac = rng.random(n)
    # Clip the mass fraction so the sampled radius stays finite.
    r_max = max_radius_factor * scale_radius
    m_cap = (1.0 + (scale_radius / r_max) ** 2) ** -1.5
    m_frac = np.minimum(m_frac, m_cap)
    radii = scale_radius / np.sqrt(m_frac ** (-2.0 / 3.0) - 1.0)

    directions = rng.standard_normal((n, dim))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    pos = radii[:, None] * directions

    vel = np.zeros((n, dim))
    if virial:
        # Rejection-sample q = v / v_esc from g(q) = q^2 (1 - q^2)^{7/2}.
        q = np.empty(n)
        remaining = np.arange(n)
        while remaining.size:
            trial_q = rng.random(remaining.size)
            trial_y = rng.random(remaining.size) * 0.1
            accepted = trial_y < trial_q**2 * (1.0 - trial_q**2) ** 3.5
            q[remaining[accepted]] = trial_q[accepted]
            remaining = remaining[~accepted]
        v_esc = np.sqrt(2.0 * total_mass) * (radii**2 + scale_radius**2) ** -0.25
        vdirs = rng.standard_normal((n, dim))
        vdirs /= np.linalg.norm(vdirs, axis=1, keepdims=True)
        vel = (q * v_esc)[:, None] * vdirs

    masses = np.full(n, total_mass / n)
    return ParticleSet(pos, vel, masses)


def two_galaxies(
    n: int,
    *,
    dim: int = 2,
    separation: float = 4.0,
    impact_parameter: float = 1.0,
    approach_speed: float = 0.5,
    mass_ratio: float = 1.0,
    seed: int = 0,
) -> ParticleSet:
    """Two Plummer spheres on an encounter orbit (the paper's galaxy problem).

    ``n`` is the total particle count, split between the two galaxies in
    proportion to ``mass_ratio`` (primary / secondary).
    """
    _check_n(n)
    if n < 2:
        raise ConfigurationError("two_galaxies needs at least 2 particles")
    if mass_ratio <= 0:
        raise ConfigurationError(f"mass_ratio must be positive, got {mass_ratio}")

    n1 = max(1, min(n - 1, int(round(n * mass_ratio / (1.0 + mass_ratio)))))
    n2 = n - n1
    mass1 = mass_ratio / (1.0 + mass_ratio)
    mass2 = 1.0 - mass1

    g1 = plummer_sphere(n1, dim=dim, total_mass=mass1, seed=seed)
    g2 = plummer_sphere(n2, dim=dim, total_mass=mass2, seed=seed + 1)

    offset = np.zeros(dim)
    offset[0] = separation / 2.0
    offset[1] = impact_parameter / 2.0
    kick = np.zeros(dim)
    kick[0] = approach_speed / 2.0

    pos = np.vstack([g1.positions - offset, g2.positions + offset])
    vel = np.vstack([g1.velocities + kick, g2.velocities - kick])
    masses = np.concatenate([g1.masses, g2.masses])
    return ParticleSet(pos, vel, masses)
