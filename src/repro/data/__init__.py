"""Synthetic stand-ins for the paper's input data.

The original study processed a 512x512 Landsat-Thematic-Mapper scene of the
Pacific Northwest and astrophysical particle sets; neither is distributable
here, so this package generates statistically comparable substitutes:

* :func:`landsat_like_scene` — spatially correlated 8-bit imagery whose
  band-to-band statistics resemble remotely sensed data.  Wavelet cost is
  data-independent, so any correlated texture exercises the same code path.
* :func:`uniform_cube`, :func:`plummer_sphere`, :func:`two_galaxies` —
  particle initial conditions for the N-body and PIC studies.
"""

from repro.data.landsat import landsat_like_scene, checkerboard, impulse_image
from repro.data.particles import (
    ParticleSet,
    plummer_sphere,
    two_galaxies,
    uniform_cube,
    uniform_disk,
)

__all__ = [
    "landsat_like_scene",
    "checkerboard",
    "impulse_image",
    "ParticleSet",
    "uniform_cube",
    "uniform_disk",
    "plummer_sphere",
    "two_galaxies",
]
