"""Synthetic Landsat-Thematic-Mapper-like test imagery.

The ICPP'96 experiments used a 512x512 Landsat-TM scene of the Pacific
Northwest.  The scene itself is not redistributable, and the wavelet
decomposition's runtime is data-independent, so for reproduction purposes we
only need imagery with comparable *statistics*: spatially correlated,
non-negative, 8-bit-ranged intensity with large-scale structure (terrain)
plus fine texture (sensor noise and land-cover detail).

:func:`landsat_like_scene` builds that by spectrally shaping white noise
with a power-law (1/f^beta) filter — the standard model for natural-scene
statistics — and adding a small white-noise floor.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["landsat_like_scene", "checkerboard", "impulse_image"]


def landsat_like_scene(
    shape: tuple[int, int] = (512, 512),
    *,
    beta: float = 2.2,
    noise_floor: float = 0.02,
    seed: int = 1996,
    dtype: type = np.float64,
) -> np.ndarray:
    """Generate a spatially correlated scene resembling remotely sensed data.

    Parameters
    ----------
    shape:
        Output image shape ``(rows, cols)``.
    beta:
        Power-law exponent of the spatial spectrum (|F(k)|^2 ~ 1/|k|^beta).
        Natural terrain imagery sits near ``beta ~ 2``.
    noise_floor:
        Relative amplitude of the additive white-noise component modelling
        sensor noise.
    seed:
        Seed for the deterministic random generator.
    dtype:
        Floating dtype of the result.

    Returns
    -------
    numpy.ndarray
        Array of ``shape`` with values in ``[0, 255]``.
    """
    rows, cols = shape
    if rows < 2 or cols < 2:
        raise ConfigurationError(f"scene shape must be at least 2x2, got {shape}")
    rng = np.random.default_rng(seed)

    white = rng.standard_normal(shape)
    fy = np.fft.fftfreq(rows)[:, None]
    fx = np.fft.fftfreq(cols)[None, :]
    radius = np.hypot(fy, fx)
    radius[0, 0] = radius.flat[1]  # avoid the DC singularity
    envelope = radius ** (-beta / 2.0)
    terrain = np.fft.ifft2(np.fft.fft2(white) * envelope).real

    terrain += noise_floor * terrain.std() * rng.standard_normal(shape)

    lo, hi = terrain.min(), terrain.max()
    scaled = (terrain - lo) / (hi - lo) * 255.0
    return scaled.astype(dtype)


def checkerboard(
    shape: tuple[int, int] = (64, 64), *, period: int = 8, dtype: type = np.float64
) -> np.ndarray:
    """Deterministic checkerboard image, useful for eyeballing subband energy.

    A checkerboard with period ``2`` concentrates all its energy in the HH
    subband of a Haar decomposition, which makes it a sharp unit-test probe.
    """
    if period < 1:
        raise ConfigurationError(f"period must be >= 1, got {period}")
    rows, cols = shape
    yy, xx = np.mgrid[0:rows, 0:cols]
    return (((yy // period) + (xx // period)) % 2).astype(dtype) * 255.0


def impulse_image(
    shape: tuple[int, int] = (64, 64),
    at: tuple[int, int] | None = None,
    *,
    dtype: type = np.float64,
) -> np.ndarray:
    """Image that is zero except for a single unit impulse.

    Decomposing an impulse exposes the filter taps directly in the subbands,
    which the test suite uses to verify convolution alignment.
    """
    out = np.zeros(shape, dtype=dtype)
    if at is None:
        at = (shape[0] // 2, shape[1] // 2)
    out[at] = 1.0
    return out
